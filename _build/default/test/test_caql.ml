(* CAQL: AST utilities, parser, safety analysis, eager and lazy evaluation,
   SQL translation. *)

module L = Braid_logic
module T = L.Term
module R = Braid_relalg
module V = R.Value
module A = Braid_caql.Ast
module P = Braid_caql.Parser
module E = Braid_caql.Eval
module TS = Braid_stream.Tuple_stream

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let v x = T.Var x
let s x = T.Const (V.Str x)
let i n = T.Const (V.Int n)
let atom p args = L.Atom.make p args

(* A small test database. *)
let edge =
  R.Relation.of_tuples ~name:"edge"
    (R.Schema.make [ ("src", V.Tstr); ("dst", V.Tstr) ])
    (List.map
       (fun (a, b) -> [| V.Str a; V.Str b |])
       [ ("a", "b"); ("b", "c"); ("c", "d"); ("a", "c"); ("b", "d") ])

let num =
  R.Relation.of_tuples ~name:"num"
    (R.Schema.make [ ("node", V.Tstr); ("w", V.Tint) ])
    (List.map (fun (a, n) -> [| V.Str a; V.Int n |]) [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ])

let source (a : L.Atom.t) =
  match a.L.Atom.pred with
  | "edge" -> edge
  | "num" -> num
  | p -> Alcotest.failf "unknown relation %s" p

let schema_of = function
  | "edge" -> Some (R.Relation.schema edge)
  | "num" -> Some (R.Relation.schema num)
  | _ -> None

let eval_conj c = E.conj ~source ~schema_of c
let rows rel = R.Relation.cardinality rel

(* --- AST --- *)

let test_variant_equal () =
  let q1 = A.conj [ v "X" ] [ atom "edge" [ v "X"; v "Y" ] ] in
  let q2 = A.conj [ v "A" ] [ atom "edge" [ v "A"; v "B" ] ] in
  let q3 = A.conj [ v "A" ] [ atom "edge" [ v "A"; v "A" ] ] in
  check_bool "variants" true (A.variant_equal q1 q2);
  check_bool "not a variant (collapsed var)" false (A.variant_equal q1 q3);
  check_bool "constants matter" false
    (A.variant_equal q1 (A.conj [ v "X" ] [ atom "edge" [ v "X"; s "c" ] ]))

let test_apply_subst () =
  let q = A.conj [ v "X"; v "Y" ] [ atom "edge" [ v "X"; v "Y" ] ] in
  let sub = L.Subst.bind "X" (s "a") L.Subst.empty in
  let q' = A.apply_subst sub q in
  check_bool "head constant" true (T.equal (List.hd q'.A.head) (s "a"));
  check_bool "atom constant" true
    (T.equal (List.hd (List.hd q'.A.atoms).L.Atom.args) (s "a"))

(* --- parser --- *)

let test_parse_simple () =
  let name, q = P.parse_clause "ans(X, Y) :- edge(X, Z) & edge(Z, Y)." in
  check_str "name" "ans" name;
  match q with
  | A.Conj c ->
    check_int "two atoms" 2 (List.length c.A.atoms);
    check_int "two head vars" 2 (List.length c.A.head)
  | _ -> Alcotest.fail "expected conj"

let test_parse_constants () =
  let _, q = P.parse_clause "ans(Y) :- edge(a, Y) & num(Y, N) & N >= 2." in
  match q with
  | A.Conj c ->
    check_bool "lowercase ident is a string constant" true
      (T.equal (List.hd (List.hd c.A.atoms).L.Atom.args) (s "a"));
    check_int "one comparison" 1 (List.length c.A.cmps)
  | _ -> Alcotest.fail "expected conj"

let test_parse_negation () =
  let _, q = P.parse_clause "ans(X) :- num(X, N) & ~edge(X, X)." in
  match q with
  | A.Diff (A.Conj pos, A.Conj neg) ->
    check_int "positive atoms" 1 (List.length pos.A.atoms);
    check_int "negation side atoms" 2 (List.length neg.A.atoms)
  | _ -> Alcotest.fail "expected diff"

let test_parse_union_program () =
  let defs =
    P.parse_program
      "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z) & edge(Z, Y). other(X) :- num(X, N)."
  in
  check_int "two names" 2 (List.length defs);
  (match List.assoc "path" defs with
   | A.Union qs -> check_int "two clauses" 2 (List.length qs)
   | _ -> Alcotest.fail "expected union");
  match List.assoc "other" defs with
  | A.Conj _ -> ()
  | _ -> Alcotest.fail "expected conj"

let test_parse_arith_and_floats () =
  let _, q = P.parse_clause "ans(X) :- num(X, N) & N * 2 >= 4.5." in
  match q with
  | A.Conj c -> check_int "one cmp" 1 (List.length c.A.cmps)
  | _ -> Alcotest.fail "expected conj"

let test_parse_strings_comments () =
  let _, q = P.parse_clause "ans(X) :- edge('a', X). % trailing comment" in
  match q with
  | A.Conj c ->
    check_bool "quoted string" true (T.equal (List.hd (List.hd c.A.atoms).L.Atom.args) (s "a"))
  | _ -> Alcotest.fail "expected conj"

let test_parse_errors () =
  let fails str = try ignore (P.parse_clause str); false with P.Error _ -> true in
  check_bool "missing dot" true (fails "ans(X) :- edge(X, Y)");
  check_bool "bad token" true (fails "ans(X) :- edge(X ! Y).");
  check_bool "trailing garbage" true (fails "ans(X). extra")

(* --- analysis --- *)

let test_safety () =
  let safe = A.conj [ v "X" ] [ atom "edge" [ v "X"; v "Y" ] ] in
  let unsafe_head = A.conj [ v "Z" ] [ atom "edge" [ v "X"; v "Y" ] ] in
  let unsafe_cmp =
    A.conj
      ~cmps:[ (Braid_relalg.Row_pred.Lt, L.Literal.Term (v "Q"), L.Literal.Term (i 3)) ]
      [ v "X" ]
      [ atom "edge" [ v "X"; v "Y" ] ]
  in
  check_bool "safe" true (Braid_caql.Analyze.is_safe_conj safe);
  check_bool "unsafe head" false (Braid_caql.Analyze.is_safe_conj unsafe_head);
  check_bool "unsafe cmp" false (Braid_caql.Analyze.is_safe_conj unsafe_cmp)

let test_schema_inference () =
  let c = A.conj [ v "X"; v "N"; i 9 ] [ atom "num" [ v "X"; v "N" ] ] in
  let sch = Braid_caql.Analyze.schema_of_conj schema_of c in
  check_str "var name" "X" (R.Schema.name_at sch 0);
  check_bool "type from base" true (R.Schema.ty_at sch 1 = V.Tint);
  check_bool "const type" true (R.Schema.ty_at sch 2 = V.Tint)

let test_binding_pattern () =
  let c = A.conj [ s "a"; v "Y" ] [ atom "edge" [ s "a"; v "Y" ] ] in
  check_bool "bound,free" true (Braid_caql.Analyze.binding_pattern c = [ `Bound; `Free ])

(* --- eager evaluation --- *)

let test_eval_single_atom () =
  let c = A.conj [ v "Y" ] [ atom "edge" [ s "a"; v "Y" ] ] in
  check_int "a's successors" 2 (rows (eval_conj c))

let test_eval_join () =
  let c =
    A.conj [ v "X"; v "Z" ] [ atom "edge" [ v "X"; v "Y" ]; atom "edge" [ v "Y"; v "Z" ] ]
  in
  (* paths of length 2: a-b-c, a-b-d, b-c-d, a-c-d *)
  check_int "length-2 paths" 4 (rows (eval_conj c))

let test_eval_repeated_var () =
  let c = A.conj [ v "X" ] [ atom "edge" [ v "X"; v "X" ] ] in
  check_int "no self loops" 0 (rows (eval_conj c))

let test_eval_cmp_pushdown () =
  let c =
    A.conj
      ~cmps:[ (Braid_relalg.Row_pred.Ge, L.Literal.Term (v "N"), L.Literal.Term (i 3)) ]
      [ v "X"; v "N" ]
      [ atom "num" [ v "X"; v "N" ] ]
  in
  check_int "two heavy nodes" 2 (rows (eval_conj c))

let test_eval_arith_cmp () =
  let c =
    A.conj
      ~cmps:
        [
          ( Braid_relalg.Row_pred.Eq,
            L.Literal.Term (v "M"),
            L.Literal.Add (L.Literal.Term (v "N"), L.Literal.Term (i 1)) );
        ]
      [ v "X"; v "Y" ]
      [ atom "num" [ v "X"; v "N" ]; atom "num" [ v "Y"; v "M" ] ]
  in
  (* consecutive weights: (a,b),(b,c),(c,d) *)
  check_int "consecutive pairs" 3 (rows (eval_conj c))

let test_eval_const_head () =
  let c = A.conj [ s "tag"; v "Y" ] [ atom "edge" [ s "a"; v "Y" ] ] in
  let r = eval_conj c in
  check_int "rows" 2 (rows r);
  check_bool "const col" true (V.equal (R.Tuple.get (R.Relation.get r 0) 0) (V.Str "tag"))

let test_eval_ground_cmp_only () =
  let yes =
    A.conj ~cmps:[ (Braid_relalg.Row_pred.Lt, L.Literal.Term (i 1), L.Literal.Term (i 2)) ]
      [ i 1 ] []
  in
  let no =
    A.conj ~cmps:[ (Braid_relalg.Row_pred.Gt, L.Literal.Term (i 1), L.Literal.Term (i 2)) ]
      [ i 1 ] []
  in
  check_int "true ground" 1 (rows (eval_conj yes));
  check_int "false ground" 0 (rows (eval_conj no))

let test_eval_unsafe_raises () =
  let c = A.conj [ v "Z" ] [ atom "edge" [ v "X"; v "Y" ] ] in
  check_bool "unsafe raises" true
    (try
       ignore (eval_conj c);
       false
     with E.Unsafe _ -> true)

let test_eval_union_diff_agg () =
  let q1 = A.Conj (A.conj [ v "X" ] [ atom "edge" [ v "X"; v "Y" ] ]) in
  let q2 = A.Conj (A.conj [ v "X" ] [ atom "edge" [ v "Y"; v "X" ] ]) in
  let union = E.query ~source ~schema_of (A.Union [ q1; q2 ]) in
  check_int "all nodes" 4 (rows union);
  let diff = E.query ~source ~schema_of (A.Diff (q1, q2)) in
  (* sources that are never destinations: a *)
  check_int "roots" 1 (rows diff);
  let agg =
    E.query ~source ~schema_of
      (A.Agg { A.keys = [ 0 ]; specs = [ R.Aggregate.Count ]; source = q1 })
  in
  (* out-degrees per source node: a:2, b:2, c:1 *)
  check_int "three groups" 3 (rows agg)

(* --- lazy evaluation --- *)

let lazy_source (a : L.Atom.t) = TS.of_relation (source a)

let test_lazy_matches_eager () =
  let c =
    A.conj [ v "X"; v "Z" ] [ atom "edge" [ v "X"; v "Y" ]; atom "edge" [ v "Y"; v "Z" ] ]
  in
  let eager = eval_conj c in
  let lazy_ = E.lazy_conj ~source:lazy_source ~schema_of c in
  let norm rel = List.sort compare (List.map R.Tuple.to_list (R.Relation.to_list rel)) in
  check_bool "same result" true (norm eager = norm (TS.to_relation lazy_))

let test_lazy_is_demand_driven () =
  (* count how many tuples the base producers hand out *)
  let pulled = ref 0 in
  let counting (a : L.Atom.t) =
    let base = source a in
    let rest = ref (R.Relation.to_list base) in
    TS.from (R.Relation.schema base) (fun () ->
        match !rest with
        | [] -> None
        | t :: tl ->
          incr pulled;
          rest := tl;
          Some t)
  in
  let c =
    A.conj [ v "X"; v "Z" ] [ atom "edge" [ v "X"; v "Y" ]; atom "edge" [ v "Y"; v "Z" ] ]
  in
  let stream = E.lazy_conj ~source:counting ~schema_of c in
  let cur = TS.cursor stream in
  ignore (TS.next cur);
  let after_one = !pulled in
  ignore (TS.to_relation stream);
  let after_all = !pulled in
  check_bool "first solution needs fewer pulls" true (after_one < after_all)

let test_lazy_empty_and_ground () =
  let none =
    E.lazy_conj ~source:lazy_source ~schema_of
      (A.conj [ v "X" ] [ atom "edge" [ s "zz"; v "X" ] ])
  in
  check_int "no solutions" 0 (List.length (TS.to_list none));
  let ground =
    E.lazy_conj ~source:lazy_source ~schema_of (A.conj [ i 1 ] [])
  in
  check_int "atomless query yields one row" 1 (List.length (TS.to_list ground))

(* --- SQL translation --- *)

let test_to_sql_ok () =
  let c =
    A.conj
      ~cmps:[ (Braid_relalg.Row_pred.Ge, L.Literal.Term (v "N"), L.Literal.Term (i 2)) ]
      [ v "X"; v "N" ]
      [ atom "num" [ v "X"; v "N" ]; atom "edge" [ v "X"; v "Y" ] ]
  in
  match Braid_caql.To_sql.translate ~schema_of c with
  | Ok sql ->
    let text = Braid_remote.Sql.to_string sql in
    let contains needle hay =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    check_bool "join condition present" true (contains "t0.node = t1.src" text)
  | Error f -> Alcotest.failf "translate failed: %s" (Braid_caql.To_sql.failure_to_string f)

let test_to_sql_rejections () =
  let arith =
    A.conj
      ~cmps:
        [
          ( Braid_relalg.Row_pred.Eq,
            L.Literal.Term (v "N"),
            L.Literal.Add (L.Literal.Term (v "N"), L.Literal.Term (i 0)) );
        ]
      [ v "X" ]
      [ atom "num" [ v "X"; v "N" ] ]
  in
  check_bool "arithmetic rejected" true
    (Braid_caql.To_sql.translate ~schema_of arith = Error Braid_caql.To_sql.Arithmetic_comparison);
  let const_head = A.conj [ i 5 ] [ atom "num" [ v "X"; v "N" ] ] in
  check_bool "constant head rejected" true
    (Braid_caql.To_sql.translate ~schema_of const_head
    = Error Braid_caql.To_sql.Constant_in_head);
  let unknown = A.conj [ v "X" ] [ atom "mystery" [ v "X" ] ] in
  check_bool "unknown relation" true
    (Braid_caql.To_sql.translate ~schema_of unknown
    = Error (Braid_caql.To_sql.Unknown_relation "mystery"));
  let atomless = A.conj [ i 1 ] [] in
  check_bool "atomless rejected" true
    (Braid_caql.To_sql.translate ~schema_of atomless = Error Braid_caql.To_sql.No_relations)

let suites : unit Alcotest.test list =
  [
    ( "caql",
      [
        Alcotest.test_case "variant equality" `Quick test_variant_equal;
        Alcotest.test_case "substitution application" `Quick test_apply_subst;
        Alcotest.test_case "parse simple clause" `Quick test_parse_simple;
        Alcotest.test_case "parse constants and comparisons" `Quick test_parse_constants;
        Alcotest.test_case "parse negation" `Quick test_parse_negation;
        Alcotest.test_case "parse program with union" `Quick test_parse_union_program;
        Alcotest.test_case "parse arithmetic and floats" `Quick test_parse_arith_and_floats;
        Alcotest.test_case "parse strings and comments" `Quick test_parse_strings_comments;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "safety analysis" `Quick test_safety;
        Alcotest.test_case "schema inference" `Quick test_schema_inference;
        Alcotest.test_case "binding pattern" `Quick test_binding_pattern;
        Alcotest.test_case "eval single atom" `Quick test_eval_single_atom;
        Alcotest.test_case "eval join" `Quick test_eval_join;
        Alcotest.test_case "eval repeated variable" `Quick test_eval_repeated_var;
        Alcotest.test_case "eval comparison pushdown" `Quick test_eval_cmp_pushdown;
        Alcotest.test_case "eval arithmetic comparison" `Quick test_eval_arith_cmp;
        Alcotest.test_case "eval constant head" `Quick test_eval_const_head;
        Alcotest.test_case "eval ground comparisons only" `Quick test_eval_ground_cmp_only;
        Alcotest.test_case "eval unsafe raises" `Quick test_eval_unsafe_raises;
        Alcotest.test_case "eval union/diff/agg" `Quick test_eval_union_diff_agg;
        Alcotest.test_case "lazy matches eager" `Quick test_lazy_matches_eager;
        Alcotest.test_case "lazy is demand-driven" `Quick test_lazy_is_demand_driven;
        Alcotest.test_case "lazy empty and ground" `Quick test_lazy_empty_and_ground;
        Alcotest.test_case "to_sql translation" `Quick test_to_sql_ok;
        Alcotest.test_case "to_sql rejections" `Quick test_to_sql_rejections;
      ] );
  ]

(* --- second-order operations: aggregation syntax, SETOF, division --- *)

let test_parse_aggregate_head () =
  let _, q = P.parse_clause "load(X, count(Y), max(N)) :- edge(X, Y) & num(Y, N)." in
  match q with
  | A.Agg { A.keys = [ 0 ]; specs = [ R.Aggregate.Count; R.Aggregate.Max 2 ]; source } ->
    check_int "source head has keys then agg args" 3 (A.head_arity source)
  | _ -> Alcotest.failf "unexpected shape: %s" (A.to_string q)

let test_aggregate_head_eval () =
  let _, q = P.parse_clause "outdeg(X, count(Y)) :- edge(X, Y)." in
  let r = E.query ~source ~schema_of q in
  (* out-degrees: a:2, b:2, c:1 *)
  check_int "three groups" 3 (rows r);
  let a_row = List.find (fun t -> V.equal (R.Tuple.get t 0) (V.Str "a")) (R.Relation.to_list r) in
  check_bool "a has out-degree 2" true (V.equal (R.Tuple.get a_row 1) (V.Int 2))

let test_parse_distinct () =
  let _, q = P.parse_clause "distinct dests(Y) :- edge(X, Y)." in
  (match q with
   | A.Distinct _ -> ()
   | _ -> Alcotest.fail "expected Distinct");
  let r = E.query ~source ~schema_of q in
  check_int "unique destinations" 3 (rows r)

let test_division () =
  (* nodes X that reach EVERY destination of a: dividend (X, Y) over edges,
     divisor = a's destinations {b, c} *)
  let dividend = A.Conj (A.conj [ v "X"; v "Y" ] [ atom "edge" [ v "X"; v "Y" ] ]) in
  let divisor = A.Conj (A.conj [ v "Y" ] [ atom "edge" [ s "a"; v "Y" ] ]) in
  let r = E.query ~source ~schema_of (A.Division (dividend, divisor)) in
  (* edge = a->{b,c}, b->{c,d}: only a reaches both b and c *)
  check_int "one divider" 1 (rows r);
  check_bool "it is a" true (V.equal (R.Tuple.get (R.Relation.get r 0) 0) (V.Str "a"))

let test_division_empty_divisor () =
  let dividend = A.Conj (A.conj [ v "X"; v "Y" ] [ atom "edge" [ v "X"; v "Y" ] ]) in
  let divisor = A.Conj (A.conj [ v "Y" ] [ atom "edge" [ s "zz"; v "Y" ] ]) in
  let r = E.query ~source ~schema_of (A.Division (dividend, divisor)) in
  (* empty divisor: every candidate satisfies "for all" *)
  check_int "all sources" 3 (rows r)

let test_division_safety () =
  let dividend = A.Conj (A.conj [ v "X" ] [ atom "edge" [ v "X"; v "Y" ] ]) in
  let divisor = A.Conj (A.conj [ v "Y"; v "Z" ] [ atom "edge" [ v "Y"; v "Z" ] ]) in
  check_bool "dividend must be wider" false
    (Braid_caql.Analyze.is_safe (A.Division (dividend, divisor)))

let second_order_cases =
  [
    Alcotest.test_case "parse aggregate head" `Quick test_parse_aggregate_head;
    Alcotest.test_case "aggregate head evaluation" `Quick test_aggregate_head_eval;
    Alcotest.test_case "parse distinct (SETOF)" `Quick test_parse_distinct;
    Alcotest.test_case "relational division (ALL)" `Quick test_division;
    Alcotest.test_case "division with empty divisor" `Quick test_division_empty_divisor;
    Alcotest.test_case "division safety" `Quick test_division_safety;
  ]

let suites = match suites with
  | [ (name, cases) ] -> [ (name, cases @ second_order_cases) ]
  | other -> other

(* --- the fixed point operator (§2's second-order template) --- *)

let test_fixpoint_transitive_closure () =
  let base = A.Conj (A.conj [ v "X"; v "Y" ] [ atom "edge" [ v "X"; v "Y" ] ]) in
  let step =
    A.Conj
      (A.conj [ v "X"; v "Z" ] [ atom "tc" [ v "X"; v "Y" ]; atom "edge" [ v "Y"; v "Z" ] ])
  in
  let q = A.Fixpoint { A.name = "tc"; base; step } in
  check_bool "safe" true (Braid_caql.Analyze.is_safe q);
  let r = E.query ~source ~schema_of q in
  (* edges a->b,b->c,c->d,a->c,b->d: closure is all (x,y) with x before y *)
  check_int "full closure" 6 (rows r);
  check_bool "a reaches d" true
    (R.Relation.mem r [| V.Str "a"; V.Str "d" |])

let test_fixpoint_converges_on_cycle () =
  (* a cyclic graph must still converge thanks to set semantics *)
  let cyc =
    R.Relation.of_tuples ~name:"cyc"
      (R.Schema.make [ ("s", V.Tstr); ("d", V.Tstr) ])
      [ [| V.Str "a"; V.Str "b" |]; [| V.Str "b"; V.Str "a" |] ]
  in
  let source' (a : L.Atom.t) = if a.L.Atom.pred = "cyc" then cyc else source a in
  let schema_of' = function "cyc" -> Some (R.Relation.schema cyc) | n -> schema_of n in
  let q =
    A.Fixpoint
      {
        A.name = "r";
        base = A.Conj (A.conj [ v "X"; v "Y" ] [ atom "cyc" [ v "X"; v "Y" ] ]);
        step =
          A.Conj
            (A.conj [ v "X"; v "Z" ] [ atom "r" [ v "X"; v "Y" ]; atom "cyc" [ v "Y"; v "Z" ] ]);
      }
  in
  let r = E.query ~source:source' ~schema_of:schema_of' q in
  (* reachability on the 2-cycle: all 4 ordered pairs *)
  check_int "converged" 4 (rows r)

let fixpoint_cases =
  [
    Alcotest.test_case "fixpoint transitive closure" `Quick test_fixpoint_transitive_closure;
    Alcotest.test_case "fixpoint converges on cycles" `Quick test_fixpoint_converges_on_cycle;
  ]

let suites = match suites with
  | [ (name, cases) ] -> [ (name, cases @ fixpoint_cases) ]
  | other -> other

(* --- lazy evaluation with comparisons mid-stream --- *)

let test_lazy_cmp_filtering () =
  let c =
    A.conj
      ~cmps:
        [
          (Braid_relalg.Row_pred.Ge, L.Literal.Term (v "N"), L.Literal.Term (i 2));
          (Braid_relalg.Row_pred.Lt, L.Literal.Term (v "M"), L.Literal.Term (i 4));
        ]
      [ v "X"; v "Y" ]
      [ atom "num" [ v "X"; v "N" ]; atom "num" [ v "Y"; v "M" ] ]
  in
  let eager = eval_conj c in
  let lazy_ = E.lazy_conj ~source:lazy_source ~schema_of c in
  let norm rel = List.sort compare (List.map R.Tuple.to_list (R.Relation.to_list rel)) in
  check_bool "lazy = eager with two comparisons" true
    (norm eager = norm (TS.to_relation lazy_));
  (* N in {2,3,4} and M in {1,2,3}: 3 x 3 = 9 combinations *)
  check_int "nine pairs" 9 (rows eager)

let test_lazy_cmp_prunes_early () =
  (* an impossible ground comparison yields an empty lazy stream without
     touching the second relation *)
  let pulled = ref 0 in
  let counting (a : L.Atom.t) =
    let base = source a in
    if a.L.Atom.pred = "num" then incr pulled;
    TS.of_relation base
  in
  let c =
    A.conj
      ~cmps:[ (Braid_relalg.Row_pred.Lt, L.Literal.Term (i 2), L.Literal.Term (i 1)) ]
      [ v "X" ]
      [ atom "edge" [ v "X"; v "Y" ]; atom "num" [ v "X"; v "N" ] ]
  in
  let stream = E.lazy_conj ~source:counting ~schema_of c in
  check_int "no solutions" 0 (List.length (TS.to_list stream))

let lazy_cmp_cases =
  [
    Alcotest.test_case "lazy with comparisons" `Quick test_lazy_cmp_filtering;
    Alcotest.test_case "lazy prunes on ground false" `Quick test_lazy_cmp_prunes_early;
  ]

let suites = match suites with
  | [ (name, cases) ] -> [ (name, cases @ lazy_cmp_cases) ]
  | other -> other
