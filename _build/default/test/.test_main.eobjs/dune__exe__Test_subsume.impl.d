test/test_subsume.ml: Alcotest Braid_caql Braid_logic Braid_relalg Braid_subsume List String
