test/test_relalg.ml: Alcotest Braid_relalg List
