test/test_stream.ml: Alcotest Array Braid_relalg Braid_stream List Option
