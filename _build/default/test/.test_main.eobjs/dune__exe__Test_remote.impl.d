test/test_remote.ml: Alcotest Array Braid_relalg Braid_remote Braid_stream List
