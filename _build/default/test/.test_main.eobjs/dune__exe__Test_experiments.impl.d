test/test_experiments.ml: Alcotest Braid_experiments List
