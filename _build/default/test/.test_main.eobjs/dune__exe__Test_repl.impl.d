test/test_repl.ml: Alcotest Braid List String
