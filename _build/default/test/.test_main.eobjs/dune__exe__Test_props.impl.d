test/test_props.ml: Alcotest Braid_advice Braid_caql Braid_logic Braid_relalg Braid_stream Braid_subsume Braid_workload Format Fun Hashtbl List QCheck QCheck_alcotest
