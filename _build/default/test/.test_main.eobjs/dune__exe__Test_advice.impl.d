test/test_advice.ml: Alcotest Braid_advice Braid_caql Braid_logic Braid_relalg Format List Option Printf String
