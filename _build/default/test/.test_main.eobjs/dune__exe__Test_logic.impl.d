test/test_logic.ml: Alcotest Braid_logic Braid_relalg Braid_workload Format List String
