test/test_workload.ml: Alcotest Braid Braid_experiments Braid_logic Braid_relalg Braid_workload Format List String
