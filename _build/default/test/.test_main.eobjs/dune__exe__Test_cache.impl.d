test/test_cache.ml: Alcotest Braid_cache Braid_caql Braid_logic Braid_relalg Braid_stream List String
