test/test_caql.ml: Alcotest Braid_caql Braid_logic Braid_relalg Braid_remote Braid_stream List String
