test/test_system.ml: Alcotest Braid Braid_advice Braid_cache Braid_ie Braid_logic Braid_planner Braid_relalg Braid_remote Braid_workload List
