test/test_ie.ml: Alcotest Braid Braid_advice Braid_cache Braid_caql Braid_ie Braid_logic Braid_planner Braid_relalg Braid_stream Braid_workload Format List Option String
