(* Workload generators, the loader, and the experiment table printer. *)

module R = Braid_relalg
module V = R.Value
module L = Braid_logic

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- generators --- *)

let test_family_shape () =
  let rels = Braid_workload.Datagen.family ~persons:50 ~fanout:3 () in
  let parent = List.find (fun r -> R.Relation.name r = "parent") rels in
  let person = List.find (fun r -> R.Relation.name r = "person") rels in
  check_int "one parent per non-root" 49 (R.Relation.cardinality parent);
  check_int "all persons" 50 (R.Relation.cardinality person);
  (* acyclicity: a child's index always exceeds its parent's *)
  R.Relation.iter
    (fun t ->
      let idx v =
        match v with
        | V.Str s -> int_of_string (String.sub s 1 (String.length s - 1))
        | _ -> Alcotest.fail "person name"
      in
      check_bool "parent precedes child" true (idx (R.Tuple.get t 0) < idx (R.Tuple.get t 1)))
    parent

let test_family_deterministic () =
  let dump rels =
    String.concat "|"
      (List.map (fun r -> Format.asprintf "%a" R.Relation.pp r) rels)
  in
  check_bool "same seed, same data" true
    (dump (Braid_workload.Datagen.family ~persons:30 ~fanout:2 ())
    = dump (Braid_workload.Datagen.family ~persons:30 ~fanout:2 ()));
  check_bool "different seed, different data" true
    (dump (Braid_workload.Datagen.family ~seed:1 ~persons:30 ~fanout:2 ())
    <> dump (Braid_workload.Datagen.family ~seed:2 ~persons:30 ~fanout:2 ()))

let test_bom_acyclic () =
  let rels = Braid_workload.Datagen.bill_of_materials ~parts:40 ~max_children:3 () in
  let subpart = List.find (fun r -> R.Relation.name r = "subpart") rels in
  R.Relation.iter
    (fun t ->
      let idx v =
        match v with
        | V.Str s -> int_of_string (String.sub s 4 (String.length s - 4))
        | _ -> Alcotest.fail "part id"
      in
      check_bool "component index above assembly" true
        (idx (R.Tuple.get t 0) < idx (R.Tuple.get t 1)))
    subpart

let test_university_integrity () =
  let rels = Braid_workload.Datagen.university ~students:20 ~courses:10 ~enrollments:50 () in
  let get n = List.find (fun r -> R.Relation.name r = n) rels in
  let enrolled = get "enrolled" and student = get "student" and course = get "course" in
  let student_ids =
    R.Relation.fold (fun acc t -> R.Tuple.get t 0 :: acc) [] student
  in
  let course_ids = R.Relation.fold (fun acc t -> R.Tuple.get t 0 :: acc) [] course in
  R.Relation.iter
    (fun t ->
      check_bool "enrollment references a student" true
        (List.mem (R.Tuple.get t 0) student_ids);
      check_bool "enrollment references a course" true
        (List.mem (R.Tuple.get t 1) course_ids))
    enrolled;
  (* no duplicate (student, course) pairs *)
  let pairs =
    R.Relation.fold (fun acc t -> (R.Tuple.get t 0, R.Tuple.get t 1) :: acc) [] enrolled
  in
  check_int "enrollments unique" (List.length pairs)
    (List.length (List.sort_uniq compare pairs))

let test_zipf_locality () =
  let prng = Braid_workload.Prng.create 3 in
  let skewed =
    Braid_workload.Queries.constants_with_locality prng
      ~pool:(List.init 50 string_of_int) ~skew:1.5 ~n:200
  in
  let distinct = List.length (List.sort_uniq compare skewed) in
  check_bool "locality: few distinct constants" true (distinct < 40);
  let prng = Braid_workload.Prng.create 3 in
  let uniform =
    Braid_workload.Queries.constants_with_locality prng
      ~pool:(List.init 50 string_of_int) ~skew:0.0 ~n:200
  in
  check_bool "uniform spreads wider" true
    (List.length (List.sort_uniq compare uniform) >= distinct)

(* --- loader --- *)

let test_loader_csv () =
  let rel =
    Braid.Loader.relation_of_csv_text ~name:"emp"
      "name,dept,salary\nalice,sales,50\nbob,eng,60\ncarol,eng,70\n"
  in
  check_int "three rows" 3 (R.Relation.cardinality rel);
  let schema = R.Relation.schema rel in
  check_bool "salary typed int" true (R.Schema.ty_at schema 2 = V.Tint);
  check_bool "name typed str" true (R.Schema.ty_at schema 0 = V.Tstr)

let test_loader_csv_mixed_column () =
  (* a column with "1" and "x" must fall back to strings coherently *)
  let rel = Braid.Loader.relation_of_csv_text ~name:"m" "k\n1\nx\n" in
  check_bool "both rows are strings" true
    (List.for_all
       (fun t -> match R.Tuple.get t 0 with V.Str _ -> true | _ -> false)
       (R.Relation.to_list rel))

let test_loader_csv_errors () =
  check_bool "empty rejected" true
    (try ignore (Braid.Loader.relation_of_csv_text ~name:"x" "  \n \n"); false
     with Invalid_argument _ -> true);
  check_bool "ragged rejected" true
    (try ignore (Braid.Loader.relation_of_csv_text ~name:"x" "a,b\n1\n"); false
     with Invalid_argument _ -> true)

let test_loader_rules () =
  let kb =
    Braid.Loader.kb_of_rules_text
      "path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z) & path(Z, Y). big(X) :- node(X, W) & W > 5."
  in
  check_int "two path rules" 2 (List.length (L.Kb.rules_for kb "path"));
  check_int "one big rule" 1 (List.length (L.Kb.rules_for kb "big"));
  check_bool "path recursive" true (List.mem "path" (L.Kb.recursive_preds kb));
  check_bool "negation rejected" true
    (try ignore (Braid.Loader.kb_of_rules_text "p(X) :- a(X) & ~b(X)."); false
     with Invalid_argument _ -> true)

let test_loader_query () =
  let q = Braid.Loader.parse_atomic_query "ancestor(p0, Y)" in
  check_bool "pred" true (q.L.Atom.pred = "ancestor");
  check_int "arity" 2 (L.Atom.arity q);
  check_bool "non-atomic rejected" true
    (try ignore (Braid.Loader.parse_atomic_query "p(X) :- q(X)"); false
     with Invalid_argument _ -> true)

(* --- the table printer --- *)

let test_table_render () =
  let t =
    Braid_experiments.Table.make ~title:"demo" ~columns:[ "name"; "n"; "f" ]
      ~notes:[ "a note" ]
      [
        [ Braid_experiments.Table.Text "row1"; Int 12; Float 3.25 ];
        [ Braid_experiments.Table.Text "longer-row"; Int 5; Float 0.0 ];
      ]
  in
  let text = Format.asprintf "%a" Braid_experiments.Table.pp t in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "has title" true (contains "demo" text);
  check_bool "has note" true (contains "note: a note" text);
  check_bool "columns padded consistently" true (contains "longer-row | 5" text);
  check_bool "float formatting" true (contains "3.2" text)

let suites : unit Alcotest.test list =
  [
    ( "workload",
      [
        Alcotest.test_case "family shape" `Quick test_family_shape;
        Alcotest.test_case "family determinism" `Quick test_family_deterministic;
        Alcotest.test_case "bom acyclic" `Quick test_bom_acyclic;
        Alcotest.test_case "university integrity" `Quick test_university_integrity;
        Alcotest.test_case "zipf locality" `Quick test_zipf_locality;
        Alcotest.test_case "loader: csv" `Quick test_loader_csv;
        Alcotest.test_case "loader: mixed column" `Quick test_loader_csv_mixed_column;
        Alcotest.test_case "loader: csv errors" `Quick test_loader_csv_errors;
        Alcotest.test_case "loader: rules" `Quick test_loader_rules;
        Alcotest.test_case "loader: query" `Quick test_loader_query;
        Alcotest.test_case "table rendering" `Quick test_table_render;
      ] );
  ]

(* --- telecom workload --- *)

let test_telecom_integrity () =
  let rels = Braid_workload.Datagen.telecom ~offices:15 ~customers:30 ~orders:20 () in
  let get n = List.find (fun r -> R.Relation.name r = n) rels in
  let span = get "span" and customer = get "customer" and orders = get "order_req" in
  (* network acyclic: dst index above src index *)
  R.Relation.iter
    (fun t ->
      let idx v =
        match v with
        | V.Str s -> int_of_string (String.sub s 2 (String.length s - 2))
        | _ -> Alcotest.fail "co id"
      in
      check_bool "acyclic span" true (idx (R.Tuple.get t 0) < idx (R.Tuple.get t 1)))
    span;
  (* customers reference existing offices *)
  let co_ids = R.Relation.fold (fun acc t -> R.Tuple.get t 0 :: acc) [] (get "co") in
  R.Relation.iter
    (fun t -> check_bool "customer office exists" true (List.mem (R.Tuple.get t 1) co_ids))
    customer;
  (* orders reference existing customers *)
  let cust_ids = R.Relation.fold (fun acc t -> R.Tuple.get t 0 :: acc) [] customer in
  R.Relation.iter
    (fun t -> check_bool "order customer exists" true (List.mem (R.Tuple.get t 1) cust_ids))
    orders;
  check_bool "telecom kb is lint-clean" true (L.Kb.lint (Braid_workload.Kbgen.telecom ()) = [])

let test_telecom_end_to_end () =
  let sys =
    Braid.System.build ~kb:(Braid_workload.Kbgen.telecom ())
      ~data:(Braid_workload.Datagen.telecom ~offices:15 ~customers:30 ~orders:20 ())
      ()
  in
  let servable = Braid.System.solve_text sys "servable(co1, S)" in
  check_bool "servability computable" true (R.Relation.cardinality servable >= 0);
  let reach = Braid.System.solve_text sys "connected(co0, B)" in
  check_bool "network closure nonempty" true (R.Relation.cardinality reach > 0)

let telecom_cases =
  [
    Alcotest.test_case "telecom integrity" `Quick test_telecom_integrity;
    Alcotest.test_case "telecom end to end" `Quick test_telecom_end_to_end;
  ]

let suites = match suites with
  | [ (name, cases) ] -> [ (name, cases @ telecom_cases) ]
  | other -> other
