(** The problem graph shaper (paper §4.1): eagerly constrains the problem
    graph before any DBMS access.

    - Evaluates built-in conjuncts whose arguments are already bound
      ("constants may also be produced by evaluating predicates all of
      whose arguments are bound"); a false condition culls its AND branch.
    - Culls AND branches that require two mutually exclusive predicates on
      identical arguments (mutual-exclusion SOAs).
    - Orders conjuncts within each AND node by a bound-first,
      smallest-cardinality-first heuristic using catalog statistics
      ("cardinality and selectivity information from the DBMS schema ...
      is used to determine producer-consumer relationships"). Built-ins
      are placed as early as their variables allow. *)

type stats = {
  culled_by_condition : int;
  culled_by_mutex : int;
  conditions_evaluated : int;
  reordered_nodes : int;
}

val shape :
  Braid_logic.Kb.t ->
  cardinality:(string -> int) ->
  Problem_graph.t ->
  stats
(** Mutates the graph in place. [cardinality] typically comes from the
    remote catalog via the CMS. *)

val rule_orderings : Problem_graph.t -> (string * int list) list
(** For each rule id appearing in the (shaped) graph, the permutation
    applied to its body (positions into the original body), taken from the
    first instance encountered. The strategy controller replays these
    orderings when it expands rules dynamically. *)
