module L = Braid_logic
module A = Braid_caql.Ast
module Adv = Braid_advice.Ast
module PG = Problem_graph

let uniq xs =
  let rec loop seen = function
    | [] -> List.rev seen
    | x :: rest -> loop (if List.mem x seen then seen else x :: seen) rest
  in
  loop [] xs

let minimal_args ~head_vars ~body_vars_outside ~run_vars =
  List.filter (fun v -> List.mem v head_vars || List.mem v body_vars_outside) run_vars

(* --- segmentation of an AND node's children into runs --- *)

type segment =
  | Run of L.Atom.t list * L.Literal.t list  (** base atoms + attached conditions *)
  | Derived_goal of PG.or_node
  | Stray_condition of L.Literal.t

let segment ~max_conj_size children =
  (* Group consecutive base subgoals (with interleaved conditions) into
     runs of at most [max_conj_size] base atoms. A condition joins the run
     only if its variables are covered by the run's atoms. *)
  let flush atoms conds acc =
    match List.rev atoms with
    | [] -> List.rev_append (List.map (fun c -> Stray_condition c) (List.rev conds)) acc
    | atoms' ->
      let atom_vars = List.concat_map L.Atom.vars atoms' in
      let keep, stray =
        List.partition
          (fun c -> List.for_all (fun v -> List.mem v atom_vars) (L.Literal.vars c))
          (List.rev conds)
      in
      List.rev_append
        (List.map (fun c -> Stray_condition c) stray)
        (Run (atoms', keep) :: acc)
  in
  let rec go children atoms natoms conds acc =
    match children with
    | [] -> List.rev (flush atoms conds acc)
    | PG.Subgoal n :: rest when n.PG.kind = PG.Base ->
      if natoms >= max_conj_size then
        go rest [ n.PG.goal ] 1 [] (flush atoms conds acc)
      else go rest (n.PG.goal :: atoms) (natoms + 1) conds acc
    | PG.Subgoal n :: rest ->
      go rest [] 0 [] (Derived_goal n :: flush atoms conds acc)
    | PG.Condition c :: rest ->
      if atoms = [] then go rest atoms natoms conds (Stray_condition c :: acc)
      else go rest atoms natoms (c :: conds) acc
  in
  go children [] 0 [] []

(* --- shared spec table --- *)

type table = {
  mutable specs : Adv.view_spec list; (* newest first *)
  mutable counter : int;
}

let spec_key (def : A.conj) bindings =
  A.conj_to_string (A.canonical def)
  ^ "/"
  ^ String.concat "" (List.map (function Adv.Producer -> "^" | Adv.Consumer -> "?") bindings)

let get_or_create table def bindings rule_id =
  let key = spec_key def bindings in
  match
    List.find_opt (fun s -> String.equal (spec_key s.Adv.def s.Adv.bindings) key) table.specs
  with
  | Some s -> s
  | None ->
    table.counter <- table.counter + 1;
    let s =
      Adv.spec ~rule_ids:[ rule_id ] ~id:(Printf.sprintf "d%d" table.counter) ~bindings def
    in
    table.specs <- s :: table.specs;
    s

(* --- the annotated traversal producing specs and path --- *)

let run_spec table ~rule ~bound (atoms, conds) =
  let head_vars = L.Atom.vars rule.L.Rule.head in
  let run_lits = List.map (fun a -> L.Literal.Rel a) atoms @ conds in
  let run_keys = List.map L.Literal.to_string run_lits in
  (* Body variables outside the run: every body literal not consumed by the
     run (matching by printed form, consuming duplicates). *)
  let remaining = ref run_keys in
  let outside =
    List.concat_map
      (fun lit ->
        let key = L.Literal.to_string lit in
        if List.mem key !remaining then begin
          (* remove one occurrence *)
          let rec remove = function
            | [] -> []
            | k :: rest -> if String.equal k key then rest else k :: remove rest
          in
          remaining := remove !remaining;
          []
        end
        else L.Literal.vars lit)
      rule.L.Rule.body
  in
  let run_vars = uniq (List.concat_map L.Atom.vars atoms) in
  let params = minimal_args ~head_vars ~body_vars_outside:(uniq outside) ~run_vars in
  let bindings =
    List.map (fun v -> if List.mem v bound then Adv.Consumer else Adv.Producer) params
  in
  let cmps =
    List.filter_map
      (function L.Literal.Cmp (op, a, b) -> Some (op, a, b) | L.Literal.Rel _ -> None)
      conds
  in
  let def = A.conj ~cmps (List.map (fun v -> L.Term.Var v) params) atoms in
  get_or_create table def bindings rule.L.Rule.id

(* First producer-annotated parameter of a spec, for the |Y| repetition
   bound of the tail of a rule body. *)
let first_producer (s : Adv.view_spec) =
  let rec go params bindings =
    match params, bindings with
    | L.Term.Var v :: _, Adv.Producer :: _ -> Some v
    | _ :: ps, _ :: bs -> go ps bs
    | _, _ -> None
  in
  go s.Adv.def.A.head s.Adv.bindings

let seq_once ps = Adv.Seq (ps, { Adv.lo = 1; hi = Adv.Fin 1 })

(* Run-length parameter for the current [generate] invocation. *)
let segment_size = ref max_int

let rec path_of_or table kb recursive_preds bound (node : PG.or_node) : Adv.path list =
  match node.PG.kind with
  | PG.Base ->
    (* A bare base goal at OR level only happens for a base-root query. *)
    let rule = L.Rule.make ~id:"query" node.PG.goal [ L.Literal.Rel node.PG.goal ] in
    let s = run_spec table ~rule ~bound ([ node.PG.goal ], []) in
    [ Adv.Pattern (s.Adv.id, s.Adv.def.A.head) ]
  | PG.Undefined -> []
  | PG.Derived ->
    if node.PG.recursive_ref then []
    else begin
      let branch_paths =
        List.map (fun b -> path_of_and table kb recursive_preds bound b) node.PG.branches
      in
      let non_empty = List.filter (fun (p, _) -> p <> []) branch_paths in
      let inner =
        match non_empty with
        | [] -> []
        | [ (single, _) ] -> single
        | several ->
          let certain (p, guarded) =
            (not guarded)
            &&
            match p with
            | Adv.Pattern _ :: _ -> true
            | (Adv.Seq _ | Adv.Alt _) :: _ | [] -> false
          in
          let several_paths = List.map fst several in
          if List.for_all certain several then
            (* Every branch surely issues its queries (all-solutions,
               chronological order): a sequence, as in the paper's
               Example 1. *)
            List.concat several_paths
          else begin
            (* Branch guards decide; emit an alternation as in Example 2,
               with selection term 1 when the guards are mutually
               exclusive. *)
            let guards =
              List.map
                (fun (b : PG.and_node) ->
                  List.find_map
                    (function
                      | PG.Subgoal n when n.PG.kind = PG.Derived -> Some n.PG.goal.L.Atom.pred
                      | PG.Subgoal _ | PG.Condition _ -> None)
                    b.PG.children)
                node.PG.branches
            in
            let all_mutex =
              let rec pairs = function
                | [] -> true
                | Some g :: rest ->
                  List.for_all
                    (function Some g' -> L.Kb.mutually_exclusive kb g g' | None -> false)
                    rest
                  && pairs rest
                | None :: _ -> false
              in
              pairs guards
            in
            let sel = if all_mutex then Some 1 else None in
            [ Adv.Alt (List.map (fun p -> seq_once p) several_paths, sel) ]
          end
      in
      if inner = [] then []
      else if List.mem node.PG.goal.L.Atom.pred recursive_preds then
        [ Adv.Seq (inner, { Adv.lo = 1; hi = Adv.Inf }) ]
      else inner
    end

and path_of_and table kb recursive_preds bound (b : PG.and_node) : Adv.path list * bool =
  let max_conj_size = !segment_size in
  let segments = segment ~max_conj_size b.PG.children in
  let bound_here = ref bound in
  (* A branch is "guarded" when an IE-only derived goal (one contributing
     no query pattern) precedes its first pattern: whether the branch's
     queries appear at all then depends on IE-side processing (paper
     Example 2). *)
  let guarded = ref false in
  let saw_pattern = ref false in
  let items =
    List.concat_map
      (fun seg ->
        match seg with
        | Run (atoms, conds) ->
          let s = run_spec table ~rule:b.PG.rule ~bound:!bound_here (atoms, conds) in
          bound_here :=
            uniq (!bound_here @ List.concat_map L.Atom.vars atoms);
          saw_pattern := true;
          [ Adv.Pattern (s.Adv.id, s.Adv.def.A.head) ]
        | Derived_goal n ->
          let sub = path_of_or table kb recursive_preds !bound_here n in
          bound_here := uniq (!bound_here @ L.Atom.vars n.PG.goal);
          if sub = [] && not !saw_pattern then guarded := true;
          if sub <> [] then saw_pattern := true;
          sub
        | Stray_condition c ->
          bound_here := uniq (!bound_here @ L.Literal.vars c);
          [])
      segments
  in
  ( (match items with
    | [] -> []
    | [ single ] -> [ single ]
    | first :: rest ->
      (* The body tail repeats once per binding produced by the first
         element: (first, (rest)^<0,|Y|>). *)
      let hi =
        match first with
        | Adv.Pattern (id, _) ->
          (match List.find_opt (fun s -> String.equal s.Adv.id id) table.specs with
           | Some s ->
             (match first_producer s with Some v -> Adv.Cardinality v | None -> Adv.Fin 1)
           | None -> Adv.Inf)
        | Adv.Seq _ | Adv.Alt _ -> Adv.Inf
      in
      [ first; Adv.Seq (rest, { Adv.lo = 0; hi }) ]),
    !guarded )

let generate ?(max_conj_size = max_int) kb (g : PG.t) =
  segment_size := max_conj_size;
  let table = { specs = []; counter = 0 } in
  let recursive_preds = L.Kb.recursive_preds kb in
  (* Entry bindings: the AI query's constant positions are bound; its
     variables are free. Variables of the root goal are not bound. *)
  let path_items = path_of_or table kb recursive_preds [] g.PG.root in
  let path = match path_items with [] -> None | items -> Some (seq_once items) in
  segment_size := max_int;
  { Adv.specs = List.rev table.specs; path }
