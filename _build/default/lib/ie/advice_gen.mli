(** The view specifier and the path expression creator (paper §4.1/§4.2) —
    the two Figure-4 modules that turn a shaped problem graph into advice.

    {b View specifications}: under each AND node, maximal runs of base and
    evaluable conjuncts become view specifications (a parameter bounds the
    run length — "a parameter controls the maximum size of the conjunctions
    that can be transformed into view specifications, with 1 being the
    smallest possible value"). A specification's parameter list is the
    minimal argument set [A = (H ∪ B) ∩ D] (H: head variables, B: body
    variables outside the run, D: run variables); parameters bound at run
    entry (per the depth-first, left-to-right execution the shaper fixed)
    are annotated as consumers [?], the rest as producers [^].

    {b Path expression}: the graph traversal order is abstracted into
    sequences (rule bodies; the tail of a body repeats once per binding of
    the first producer, [<0,|Y|>]), alternations (OR branches whose
    selection cannot be predicted, with selection term 1 when the branch
    guards are mutually exclusive SOAs), and [<1,∞>] loops around recursive
    relation instances.

    Structurally identical specifications are shared ("the CMS makes the
    decision whether common representation for separate uses is feasible";
    here the IE already merges them). *)

val generate :
  ?max_conj_size:int ->
  Braid_logic.Kb.t ->
  Problem_graph.t ->
  Braid_advice.Ast.t
(** [max_conj_size] defaults to [max_int] (full conjunction compilation);
    the interpretive strategy uses [1]. *)

(**/**)

(* Exposed for unit tests. *)

val minimal_args :
  head_vars:string list ->
  body_vars_outside:string list ->
  run_vars:string list ->
  string list
