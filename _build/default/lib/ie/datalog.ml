module L = Braid_logic
module R = Braid_relalg
module A = Braid_caql.Ast

type outcome = {
  result : R.Relation.t;
  iterations : int;
  tuples_produced : int;
}

let body_atoms (r : L.Rule.t) =
  List.filter_map
    (function L.Literal.Rel a -> Some a | L.Literal.Cmp _ -> None)
    r.L.Rule.body

let body_cmps (r : L.Rule.t) =
  List.filter_map
    (function L.Literal.Cmp (op, a, b) -> Some (op, a, b) | L.Literal.Rel _ -> None)
    r.L.Rule.body

(* Derived predicates reachable from the query through rules. *)
let reachable kb query =
  let visited = Hashtbl.create 16 in
  let rec go p =
    if (not (Hashtbl.mem visited p)) && L.Kb.is_derived kb p then begin
      Hashtbl.add visited p ();
      List.iter
        (fun r -> List.iter (fun a -> go a.L.Atom.pred) (body_atoms r))
        (L.Kb.rules_for kb p)
    end
  in
  go query.L.Atom.pred;
  Hashtbl.fold (fun p () acc -> p :: acc) visited [] |> List.sort String.compare

let rule_query (r : L.Rule.t) =
  A.conj ~cmps:(body_cmps r) r.L.Rule.head.L.Atom.args (body_atoms r)

(* [rule_query] with the [j]-th relation occurrence renamed to the delta
   marker, for semi-naive occurrence-restricted joins. *)
let delta_marker p = "\xce\x94" ^ p (* Δp *)

let rule_query_with_delta (r : L.Rule.t) j =
  let q = rule_query r in
  let atoms =
    List.mapi
      (fun i (a : L.Atom.t) ->
        if i = j then { a with L.Atom.pred = delta_marker a.L.Atom.pred } else a)
      q.A.atoms
  in
  { q with A.atoms }

let empty_for (a : L.Atom.t) =
  let attrs = List.mapi (fun i _ -> (Printf.sprintf "a%d" i, R.Value.Tstr)) a.L.Atom.args in
  R.Relation.create ~name:a.L.Atom.pred (R.Schema.make attrs)

let solve kb ?(skip_rules = []) ?(algorithm = `Semi_naive) ~base query =
  let rules_for p =
    List.filter
      (fun (r : L.Rule.t) -> not (List.mem r.L.Rule.id skip_rules))
      (L.Kb.rules_for kb p)
  in
  let derived = reachable kb query in
  let is_derived p = List.mem p derived in
  let total : (string, R.Relation.t) Hashtbl.t = Hashtbl.create 16 in
  let delta : (string, R.Relation.t) Hashtbl.t = Hashtbl.create 16 in
  let schema_of name =
    match Hashtbl.find_opt total name with
    | Some r -> Some (R.Relation.schema r)
    | None -> Option.map R.Relation.schema (base name)
  in
  (* sources: [source] resolves derived predicates to their running totals;
     delta markers to the previous round's delta. *)
  let source (a : L.Atom.t) =
    let p = a.L.Atom.pred in
    match Hashtbl.find_opt total p with
    | Some r -> r
    | None ->
      (match Hashtbl.find_opt delta p with
       | Some r -> r
       | None -> (match base p with Some r -> r | None -> empty_for a))
  in
  (* Pre-create empty extensions so recursive references resolve in round
     one; schema inferred from the first defining rule. *)
  List.iter
    (fun p ->
      match rules_for p with
      | [] -> Hashtbl.replace total p (R.Relation.create ~name:p (R.Schema.make []))
      | r :: _ ->
        let schema = Braid_caql.Analyze.schema_of_conj schema_of (rule_query r) in
        Hashtbl.replace total p (R.Relation.create ~name:p schema))
    derived;
  let tuples_produced = ref 0 in
  let iterations = ref 0 in
  let eval q =
    let rel = Braid_caql.Eval.conj ~source ~schema_of q in
    tuples_produced := !tuples_produced + R.Relation.cardinality rel;
    rel
  in
  let union_distinct rels =
    match rels with
    | [] -> None
    | first :: rest -> Some (R.Relation.distinct (List.fold_left R.Ops.union_all first rest))
  in
  (match algorithm with
   | `Naive ->
     let changed = ref true in
     while !changed do
       incr iterations;
       changed := false;
       List.iter
         (fun p ->
           match union_distinct (List.map (fun r -> eval (rule_query r)) (rules_for p)) with
           | None -> ()
           | Some combined ->
             let previous = Hashtbl.find total p in
             if R.Relation.cardinality combined <> R.Relation.cardinality previous then begin
               Hashtbl.replace total p (R.Relation.with_name p combined);
               changed := true
             end)
         derived
     done
   | `Semi_naive ->
     (* round 0: full evaluation (recursive occurrences see empty totals) *)
     incr iterations;
     List.iter
       (fun p ->
         match union_distinct (List.map (fun r -> eval (rule_query r)) (rules_for p)) with
         | None -> ()
         | Some combined ->
           Hashtbl.replace total p (R.Relation.with_name p combined);
           Hashtbl.replace delta p combined)
       derived;
     let any_delta () =
       List.exists
         (fun p ->
           match Hashtbl.find_opt delta p with
           | Some d -> R.Relation.cardinality d > 0
           | None -> false)
         derived
     in
     while any_delta () do
       incr iterations;
       let next_delta = Hashtbl.create 16 in
       List.iter
         (fun p ->
           let contributions =
             List.concat_map
               (fun (r : L.Rule.t) ->
                 let atoms = body_atoms r in
                 List.concat
                   (List.mapi
                      (fun j (a : L.Atom.t) ->
                        if
                          is_derived a.L.Atom.pred
                          &&
                          match Hashtbl.find_opt delta a.L.Atom.pred with
                          | Some d -> R.Relation.cardinality d > 0
                          | None -> false
                        then begin
                          (* resolve occurrence j through the delta *)
                          let q = rule_query_with_delta r j in
                          let source' (at : L.Atom.t) =
                            let p' = at.L.Atom.pred in
                            if String.length p' > 2 && String.sub p' 0 2 = "\xce\x94" then
                              Hashtbl.find delta (String.sub p' 2 (String.length p' - 2))
                            else source at
                          in
                          let schema_of' n =
                            if String.length n > 2 && String.sub n 0 2 = "\xce\x94" then
                              Option.map R.Relation.schema
                                (Hashtbl.find_opt delta (String.sub n 2 (String.length n - 2)))
                            else schema_of n
                          in
                          let rel = Braid_caql.Eval.conj ~source:source' ~schema_of:schema_of' q in
                          tuples_produced := !tuples_produced + R.Relation.cardinality rel;
                          [ rel ]
                        end
                        else [])
                      atoms))
               (rules_for p)
           in
           match union_distinct contributions with
           | None -> ()
           | Some combined ->
             let previous = Hashtbl.find total p in
             let fresh = R.Ops.diff combined previous in
             if R.Relation.cardinality fresh > 0 then begin
               Hashtbl.replace total p
                 (R.Relation.with_name p (R.Relation.distinct (R.Ops.union_all previous fresh)));
               Hashtbl.replace next_delta p fresh
             end)
         derived;
       Hashtbl.reset delta;
       Hashtbl.iter (fun p d -> Hashtbl.replace delta p d) next_delta
     done);
  let answer =
    Braid_caql.Eval.conj ~source ~schema_of
      (A.conj (List.map (fun v -> L.Term.Var v) (L.Atom.vars query)) [ query ])
  in
  { result = answer; iterations = !iterations; tuples_produced = !tuples_produced }
