(** Problem graphs (paper §4.1): the and/or graph extracted from the
    predicate connection graph for a given AI query.

    OR nodes carry a single relation occurrence (subgoal); their successors
    are the AND nodes for the rules defining that relation. AND nodes carry
    a (renamed-apart, partially evaluated) rule instance; their successors
    are the body conjuncts in order. Leaves are database relations or
    built-in relations. A recursively defined relation is expanded only
    once per occurrence chain; deeper occurrences become unexpanded
    [recursive_ref] nodes. *)

type goal_kind =
  | Base  (** a database relation, resolved through the CMS *)
  | Derived  (** defined by rules; expanded in the graph *)
  | Undefined  (** no rules and not declared base: fails *)

type or_node = {
  goal : Braid_logic.Atom.t;
  kind : goal_kind;
  recursive_ref : bool;
      (** an occurrence of a recursive predicate already expanded above *)
  mutable branches : and_node list;
}

and and_node = {
  rule : Braid_logic.Rule.t;  (** instance after renaming and unification *)
  mutable children : child list;
}

and child =
  | Subgoal of or_node
  | Condition of Braid_logic.Literal.t  (** a built-in (evaluable) conjunct *)

type t = {
  root : or_node;
  query : Braid_logic.Atom.t;
}

val extract : Braid_logic.Kb.t -> Braid_logic.Atom.t -> t
(** Partial evaluation of the AI query against the knowledge base: derived
    relations are expanded (with unifiers pushed into rule instances, which
    performs the first round of constant propagation), base and built-in
    relations are left as leaves. *)

type size = { or_nodes : int; and_nodes : int; conditions : int }

val size : t -> size

val rule_ids : t -> string list
(** Ids of the rules with at least one surviving AND-node instance, sorted.
    Comparing before and after shaping identifies fully culled rules. *)

val base_goals : t -> Braid_logic.Atom.t list
(** The base-relation fringe, in left-to-right order (with duplicates
    removed) — the paper's "simplest kind of advice" (§4.2). *)

val pp : Format.formatter -> t -> unit
