(** The Inference Engine (paper §4, Figure 4), end to end.

    A call to {!solve} runs one IE–CMS {e session} (§3): the AI query is
    translated, the problem graph is extracted and shaped, advice (view
    specifications and a path expression) is generated and submitted to the
    CMS, and then the strategy controller walks the graph issuing CAQL
    queries. The report captures what each pipeline stage did. *)

type t

val create :
  ?strategy:Strategy.kind ->
  ?max_depth:int ->
  ?send_advice:bool ->
  Braid_logic.Kb.t ->
  Braid_planner.Qpo.t ->
  t
(** [strategy] defaults to {!Strategy.Interpretive}; [send_advice] (default
    true) controls whether the generated advice is transmitted to the CMS —
    advice is never {e required} by the CMS (§3). *)

val kb : t -> Braid_logic.Kb.t
val qpo : t -> Braid_planner.Qpo.t
val strategy : t -> Strategy.kind

type report = {
  graph_size : Problem_graph.size;
  shaper_stats : Shaper.stats;
  advice : Braid_advice.Ast.t;
  counters : Strategy.counters;
}

val solve : t -> Braid_logic.Atom.t -> Braid_stream.Tuple_stream.t * report
(** Solutions as a stream of tuples over the query's distinct variables.
    With an interpretive strategy the stream is demand-driven: inference
    (and hence CMS/DBMS work) happens as the consumer pulls. *)

val solve_all : t -> Braid_logic.Atom.t -> Braid_relalg.Relation.t * report
(** Forces all solutions. *)

val solve_first : t -> ?n:int -> Braid_logic.Atom.t ->
  Braid_relalg.Tuple.t list * report
(** Pulls at most [n] (default 1) solutions — the single-solution,
    tuple-at-a-time usage pattern of §2. *)

val ie_ms : t -> float
(** Simulated workstation inference time accumulated so far (resolution
    steps times the cost model's per-step charge). *)
