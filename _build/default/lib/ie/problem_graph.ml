module L = Braid_logic

type goal_kind =
  | Base
  | Derived
  | Undefined

type or_node = {
  goal : L.Atom.t;
  kind : goal_kind;
  recursive_ref : bool;
  mutable branches : and_node list;
}

and and_node = {
  rule : L.Rule.t;
  mutable children : child list;
}

and child =
  | Subgoal of or_node
  | Condition of L.Literal.t

type t = {
  root : or_node;
  query : L.Atom.t;
}

let kind_of kb p =
  if L.Kb.is_base kb p then Base else if L.Kb.is_derived kb p then Derived else Undefined

let extract kb query =
  let counter = ref 0 in
  let rec expand goal ancestors =
    let p = goal.L.Atom.pred in
    let kind = kind_of kb p in
    (* "Only a single instance of the recursive definition will appear in
       the subgraph for each recursive relation occurrence": the query's
       occurrence expands, the occurrence inside that instance expands once
       more (it is a distinct occurrence), and the next self-reference is
       cut. *)
    let occurrences = List.length (List.filter (String.equal p) ancestors) in
    let recursive_ref = kind = Derived && occurrences >= 2 in
    let node = { goal; kind; recursive_ref; branches = [] } in
    if kind = Derived && not recursive_ref then
      node.branches <-
        List.filter_map
          (fun rule ->
            incr counter;
            let rule = L.Rule.rename_apart !counter rule in
            (* Unify head-first so instance variables are rewritten to the
               caller's: bindings (and hence consumer annotations) then
               propagate across rule boundaries. *)
            match L.Unify.atoms L.Subst.empty rule.L.Rule.head goal with
            | None -> None
            | Some unifier ->
              (* Push the unifier through the instance: this is the first
                 round of constant propagation. *)
              let head = L.Subst.apply_atom unifier rule.L.Rule.head in
              let body = List.map (L.Literal.apply unifier) rule.L.Rule.body in
              let instance = { rule with L.Rule.head; body } in
              let children =
                List.map
                  (function
                    | L.Literal.Rel a -> Subgoal (expand a (p :: ancestors))
                    | L.Literal.Cmp _ as c -> Condition c)
                  body
              in
              Some { rule = instance; children })
          (L.Kb.rules_for kb p);
    node
  in
  { root = expand query []; query }

type size = { or_nodes : int; and_nodes : int; conditions : int }

let size t =
  let rec or_size acc node =
    let acc = { acc with or_nodes = acc.or_nodes + 1 } in
    List.fold_left and_size acc node.branches
  and and_size acc branch =
    let acc = { acc with and_nodes = acc.and_nodes + 1 } in
    List.fold_left
      (fun acc child ->
        match child with
        | Subgoal n -> or_size acc n
        | Condition _ -> { acc with conditions = acc.conditions + 1 })
      acc branch.children
  in
  or_size { or_nodes = 0; and_nodes = 0; conditions = 0 } t.root

let rule_ids t =
  let ids = Hashtbl.create 16 in
  let rec go node =
    List.iter
      (fun b ->
        Hashtbl.replace ids b.rule.L.Rule.id ();
        List.iter (function Subgoal n -> go n | Condition _ -> ()) b.children)
      node.branches
  in
  go t.root;
  Hashtbl.fold (fun id () acc -> id :: acc) ids [] |> List.sort String.compare

let base_goals t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec go node =
    (match node.kind with
     | Base ->
       let key = L.Atom.to_string node.goal in
       if not (Hashtbl.mem seen key) then begin
         Hashtbl.add seen key ();
         out := node.goal :: !out
       end
     | Derived | Undefined -> ());
    List.iter
      (fun b ->
        List.iter
          (function Subgoal n -> go n | Condition _ -> ())
          b.children)
      node.branches
  in
  go t.root;
  List.rev !out

let pp ppf t =
  let rec pp_or indent node =
    Format.fprintf ppf "%s%a%s%s@," indent L.Atom.pp node.goal
      (match node.kind with Base -> " [base]" | Derived -> "" | Undefined -> " [undefined]")
      (if node.recursive_ref then " [rec]" else "");
    List.iter (pp_and (indent ^ "  ")) node.branches
  and pp_and indent branch =
    Format.fprintf ppf "%s<%s>@," indent branch.rule.L.Rule.id;
    List.iter
      (function
        | Subgoal n -> pp_or (indent ^ "  ") n
        | Condition c -> Format.fprintf ppf "%s  %a@," indent L.Literal.pp c)
      branch.children
  in
  Format.fprintf ppf "@[<v>";
  pp_or "" t.root;
  Format.fprintf ppf "@]"
