(** Answer justification (paper §4.2.1: the rule identifiers recorded in
    view specifications are "of use within the system when the problems of
    debugging and answer justification are addressed").

    [explain] enumerates solutions together with proof trees: which rules
    fired (by id), which database facts were used (resolved through the
    CMS, so explanation benefits from the cache like any other inference),
    and which built-in conditions held. This is the expert-system "why?"
    facility the paper's applications need. *)

type proof =
  | Database_fact of Braid_logic.Atom.t  (** a ground tuple of a base relation *)
  | Builtin_holds of Braid_logic.Literal.t
  | By_rule of {
      goal : Braid_logic.Atom.t;  (** the (instantiated) goal proved *)
      rule_id : string;
      premises : proof list;
    }

val explain :
  Braid_logic.Kb.t ->
  Braid_planner.Qpo.t ->
  ?max_proofs:int ->
  ?max_depth:int ->
  Braid_logic.Atom.t ->
  (Braid_relalg.Tuple.t * proof) list
(** Up to [max_proofs] (default 10) proofs, depth-first in rule order; the
    tuple carries the bindings of the query's distinct variables. The same
    solution may appear once per distinct proof. *)

val pp_proof : Format.formatter -> proof -> unit
(** Indented proof-tree rendering. *)

val proof_rules : proof -> string list
(** The rule ids used, outermost first, without duplicates. *)

val proof_facts : proof -> Braid_logic.Atom.t list
(** The database facts used, left to right. *)
