lib/ie/advice_gen.ml: Braid_advice Braid_caql Braid_logic List Printf Problem_graph String
