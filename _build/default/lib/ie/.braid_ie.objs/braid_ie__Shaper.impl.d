lib/ie/shaper.ml: Array Braid_logic List Problem_graph String
