lib/ie/datalog.ml: Braid_caql Braid_logic Braid_relalg Hashtbl List Option Printf String
