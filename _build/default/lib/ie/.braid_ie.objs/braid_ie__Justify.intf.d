lib/ie/justify.mli: Braid_logic Braid_planner Braid_relalg Format
