lib/ie/justify.ml: Array Braid_caql Braid_logic Braid_planner Braid_relalg Braid_stream Format List Seq Strategy
