lib/ie/engine.mli: Braid_advice Braid_logic Braid_planner Braid_relalg Braid_stream Problem_graph Shaper Strategy
