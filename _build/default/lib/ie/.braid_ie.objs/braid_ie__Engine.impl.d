lib/ie/engine.ml: Advice_gen Braid_advice Braid_logic Braid_planner Braid_relalg Braid_remote Braid_stream List Problem_graph Shaper Strategy
