lib/ie/problem_graph.mli: Braid_logic Format
