lib/ie/strategy.mli: Braid_logic Braid_planner Braid_stream
