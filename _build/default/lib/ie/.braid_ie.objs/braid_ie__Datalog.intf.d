lib/ie/datalog.mli: Braid_logic Braid_relalg
