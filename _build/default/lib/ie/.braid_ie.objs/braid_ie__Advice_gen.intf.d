lib/ie/advice_gen.mli: Braid_advice Braid_logic Problem_graph
