lib/ie/strategy.ml: Array Braid_caql Braid_logic Braid_planner Braid_relalg Braid_remote Braid_stream Datalog List Option Printf Seq
