lib/ie/problem_graph.ml: Braid_logic Format Hashtbl List String
