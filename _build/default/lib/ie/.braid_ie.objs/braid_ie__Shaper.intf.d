lib/ie/shaper.mli: Braid_logic Problem_graph
