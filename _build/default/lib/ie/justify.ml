module L = Braid_logic
module R = Braid_relalg
module A = Braid_caql.Ast
module TS = Braid_stream.Tuple_stream
module Qpo = Braid_planner.Qpo

type proof =
  | Database_fact of L.Atom.t
  | Builtin_holds of L.Literal.t
  | By_rule of {
      goal : L.Atom.t;
      rule_id : string;
      premises : proof list;
    }

let explain kb qpo ?(max_proofs = 10) ?(max_depth = 10_000) query =
  let rename_counter = ref 0 in
  let rec prove env (lit : L.Literal.t) depth : (L.Subst.t * proof) Seq.t =
    if depth > max_depth then raise (Strategy.Depth_limit depth);
    match lit with
    | L.Literal.Cmp _ ->
      (match L.Literal.eval_cmp (L.Literal.apply env lit) with
       | Some true -> Seq.return (env, Builtin_holds (L.Literal.apply env lit))
       | Some false -> Seq.empty
       | None ->
         raise (Strategy.Unbound_builtin (L.Literal.to_string (L.Literal.apply env lit))))
    | L.Literal.Rel a when L.Kb.is_base kb a.L.Atom.pred ->
      let a' = L.Subst.apply_atom env a in
      let head_vars = L.Atom.vars a' in
      let q = A.conj (List.map (fun v -> L.Term.Var v) head_vars) [ a' ] in
      let answer = Qpo.answer_conj qpo ~prefer_lazy:true q in
      let cursor = TS.cursor answer.Qpo.stream in
      Seq.of_dispenser (fun () -> TS.next cursor)
      |> Seq.map (fun tuple ->
             let env' =
               List.fold_left2
                 (fun e v value -> L.Subst.bind v (L.Term.Const value) e)
                 env head_vars (Array.to_list tuple)
             in
             (env', Database_fact (L.Subst.apply_atom env' a')))
    | L.Literal.Rel a ->
      if not (L.Kb.is_derived kb a.L.Atom.pred) then Seq.empty
      else
        Seq.concat_map
          (fun rule ->
            incr rename_counter;
            let r = L.Rule.rename_apart !rename_counter rule in
            match L.Unify.atoms env a r.L.Rule.head with
            | None -> Seq.empty
            | Some env' ->
              prove_all env' r.L.Rule.body (depth + 1)
              |> Seq.map (fun (env'', premises) ->
                     ( env'',
                       By_rule
                         {
                           goal = L.Subst.apply_atom env'' a;
                           rule_id = r.L.Rule.id;
                           premises;
                         } )))
          (List.to_seq (L.Kb.rules_for kb a.L.Atom.pred))

  and prove_all env goals depth : (L.Subst.t * proof list) Seq.t =
    match goals with
    | [] -> Seq.return (env, [])
    | g :: rest ->
      Seq.concat_map
        (fun (env', p) ->
          Seq.map (fun (env'', ps) -> (env'', p :: ps)) (prove_all env' rest depth))
        (prove env g depth)
  in
  let qvars = L.Atom.vars query in
  prove L.Subst.empty (L.Literal.Rel query) 0
  |> Seq.take max_proofs
  |> Seq.map (fun (env, proof) ->
         let tuple =
           Array.of_list
             (List.map
                (fun v ->
                  match L.Subst.resolve env (L.Term.Var v) with
                  | L.Term.Const c -> c
                  | L.Term.Var _ -> R.Value.Null)
                qvars)
         in
         (tuple, proof))
  |> List.of_seq

let rec pp_proof_indent indent ppf = function
  | Database_fact a -> Format.fprintf ppf "%s%a   [database]@," indent L.Atom.pp a
  | Builtin_holds l -> Format.fprintf ppf "%s%a   [builtin]@," indent L.Literal.pp l
  | By_rule { goal; rule_id; premises } ->
    Format.fprintf ppf "%s%a   [rule %s]@," indent L.Atom.pp goal rule_id;
    List.iter (pp_proof_indent (indent ^ "  ") ppf) premises

let pp_proof ppf p =
  Format.fprintf ppf "@[<v>";
  pp_proof_indent "" ppf p;
  Format.fprintf ppf "@]"

let proof_rules p =
  let rec go acc = function
    | Database_fact _ | Builtin_holds _ -> acc
    | By_rule { rule_id; premises; _ } ->
      let acc = if List.mem rule_id acc then acc else acc @ [ rule_id ] in
      List.fold_left go acc premises
  in
  go [] p

let proof_facts p =
  let rec go acc = function
    | Database_fact a -> acc @ [ a ]
    | Builtin_holds _ -> acc
    | By_rule { premises; _ } -> List.fold_left go acc premises
  in
  go [] p
