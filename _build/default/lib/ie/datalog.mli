(** A local bottom-up datalog evaluator.

    The compiled end of the I-C range needs "a fixed point operator" for
    recursively defined relations (paper §2: second-order templates with
    specialized operators), because the remote DBMS of the paper's era
    cannot evaluate recursion. The fully compiled strategy fetches base
    extensions set-at-a-time through the CMS and runs this fixpoint on the
    workstation.

    Two algorithms, with set semantics (results are identical):

    - [`Naive]: every round re-derives every derived relation from scratch
      until nothing grows.
    - [`Semi_naive] (default): rounds after the first join each rule once
      per recursive body occurrence with that occurrence restricted to the
      previous round's {e delta}, so settled tuples are not re-derived.

    The [tuples_produced] counter measures the work difference. *)

type outcome = {
  result : Braid_relalg.Relation.t;  (** bindings for the query's variables *)
  iterations : int;
  tuples_produced : int;  (** total tuples materialized across rounds *)
}

val solve :
  Braid_logic.Kb.t ->
  ?skip_rules:string list ->
  ?algorithm:[ `Naive | `Semi_naive ] ->
  base:(string -> Braid_relalg.Relation.t option) ->
  Braid_logic.Atom.t ->
  outcome
(** Evaluates all derived predicates reachable from the query to a fixpoint
    over the supplied base extensions, then answers the query atom. The
    result schema names the query's distinct variables in order; constants
    in the query act as selections. Raises [Braid_caql.Eval.Unsafe] on
    non-range-restricted rules. Predicates that are neither derived nor
    supplied by [base] fail (empty), as in Prolog. *)
