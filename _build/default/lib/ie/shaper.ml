module L = Braid_logic
module PG = Problem_graph

type stats = {
  culled_by_condition : int;
  culled_by_mutex : int;
  conditions_evaluated : int;
  reordered_nodes : int;
}

let child_vars = function
  | PG.Subgoal n -> L.Atom.vars n.PG.goal
  | PG.Condition c -> L.Literal.vars c

(* Bound-first ordering score: fraction of bound argument positions, then
   estimated result size. Smaller is better. *)
let subgoal_score kb cardinality bound (n : PG.or_node) =
  let args = n.PG.goal.L.Atom.args in
  let arity = max 1 (List.length args) in
  let bound_positions =
    List.length
      (List.filter
         (function
           | L.Term.Const _ -> true
           | L.Term.Var x -> List.mem x bound)
         args)
  in
  let unbound_fraction = 1.0 -. (float_of_int bound_positions /. float_of_int arity) in
  let fact_guard () =
    let rules = L.Kb.rules_for kb n.PG.goal.L.Atom.pred in
    rules <> [] && List.for_all (fun r -> r.L.Rule.body = []) rules
  in
  (* Functional-dependency SOAs (§4.1): when a goal's determinant
     positions are all bound, the dependent positions are determined — the
     goal behaves like a lookup (estimated cardinality 1), making it a
     prime producer-consumer pivot. *)
  let fd_lookup () =
    List.exists
      (function
        | L.Soa.Functional_dependency { determinant; _ } ->
          List.for_all
            (fun i ->
              match List.nth_opt args i with
              | Some (L.Term.Const _) -> true
              | Some (L.Term.Var x) -> List.mem x bound
              | None -> false)
            determinant
        | L.Soa.Mutual_exclusion _ | L.Soa.Recursive_structure _ -> false)
      (L.Kb.functional_dependencies kb n.PG.goal.L.Atom.pred)
  in
  (* Cost class first: IE-only fact guards are free and constrain the
     search (paper: "use all available knowledge to constrain the search
     space ... as early as possible"), base relations cost a DBMS access,
     rule-defined goals are expanded last. *)
  let cls, est =
    match n.PG.kind with
    | PG.Base ->
      if fd_lookup () then (1, 1.0)
      else
        let card = float_of_int (max 1 (cardinality n.PG.goal.L.Atom.pred)) in
        (* every bound position divides the estimate by 10 (generic 0.1
           selectivity; the catalog-precise estimate lives in the planner) *)
        (1, card /. (10.0 ** float_of_int bound_positions))
    | PG.Derived ->
      if fact_guard () then (0, float_of_int (List.length (L.Kb.rules_for kb n.PG.goal.L.Atom.pred)))
      else (2, 10_000.0)
    | PG.Undefined -> (2, 10_000.0)
  in
  (cls, unbound_fraction, est)

let order_children kb cardinality (b : PG.and_node) =
  let remaining = ref b.PG.children in
  let bound = ref [] in
  let picked = ref [] in
  let pick child =
    remaining := List.filter (fun c -> c != child) !remaining;
    bound := !bound @ List.filter (fun v -> not (List.mem v !bound)) (child_vars child);
    picked := child :: !picked
  in
  while !remaining <> [] do
    (* Conditions whose variables are all bound go first. *)
    match
      List.find_opt
        (function
          | PG.Condition c -> List.for_all (fun v -> List.mem v !bound) (L.Literal.vars c)
          | PG.Subgoal _ -> false)
        !remaining
    with
    | Some c -> pick c
    | None ->
      let subgoals =
        List.filter_map
          (function PG.Subgoal n as c -> Some (c, n) | PG.Condition _ -> None)
          !remaining
      in
      (match subgoals with
       | [] ->
         (* Only conditions with unbound variables remain; keep them in
            place (the strategy will report the safety error). *)
         List.iter pick !remaining
       | _ ->
         let best, _ =
           List.fold_left
             (fun (best, best_score) (c, n) ->
               let score = subgoal_score kb cardinality !bound n in
               if score < best_score then (c, score) else (best, best_score))
             (let c, n = List.hd subgoals in
              (c, subgoal_score kb cardinality !bound n))
             (List.tl subgoals)
         in
         pick best)
  done;
  List.rev !picked

let literal_of_child = function
  | PG.Subgoal n -> L.Literal.Rel n.PG.goal
  | PG.Condition c -> c

let branch_has_mutex kb (b : PG.and_node) =
  let subgoals =
    List.filter_map (function PG.Subgoal n -> Some n.PG.goal | PG.Condition _ -> None) b.PG.children
  in
  let rec pairs = function
    | [] -> false
    | (a : L.Atom.t) :: rest ->
      List.exists
        (fun (c : L.Atom.t) ->
          L.Kb.mutually_exclusive kb a.L.Atom.pred c.L.Atom.pred
          && List.length a.L.Atom.args = List.length c.L.Atom.args
          && List.for_all2 L.Term.equal a.L.Atom.args c.L.Atom.args)
        rest
      || pairs rest
  in
  pairs subgoals

let shape kb ~cardinality (g : PG.t) =
  let culled_cond = ref 0 in
  let culled_mutex = ref 0 in
  let evaluated = ref 0 in
  let reordered = ref 0 in
  let rec shape_or (node : PG.or_node) =
    node.PG.branches <- List.filter shape_and node.PG.branches
  and shape_and (b : PG.and_node) =
    (* Evaluate ground conditions; a false one culls the branch. *)
    let alive = ref true in
    List.iter
      (function
        | PG.Condition c ->
          (match L.Literal.eval_cmp c with
           | Some ok ->
             incr evaluated;
             if not ok then alive := false
           | None -> ())
        | PG.Subgoal _ -> ())
      b.PG.children;
    if not !alive then begin
      incr culled_cond;
      false
    end
    else if branch_has_mutex kb b then begin
      incr culled_mutex;
      false
    end
    else begin
      let ordered = order_children kb cardinality b in
      if
        not
          (List.for_all2
             (fun a c -> a == c)
             b.PG.children ordered)
      then incr reordered;
      b.PG.children <- ordered;
      List.iter (function PG.Subgoal n -> shape_or n | PG.Condition _ -> ()) b.PG.children;
      true
    end
  in
  shape_or g.PG.root;
  {
    culled_by_condition = !culled_cond;
    culled_by_mutex = !culled_mutex;
    conditions_evaluated = !evaluated;
    reordered_nodes = !reordered;
  }

let rule_orderings (g : PG.t) =
  let orderings = ref [] in
  let lit_key l = L.Literal.to_string l in
  let record (b : PG.and_node) =
    let id = b.PG.rule.L.Rule.id in
    if not (List.mem_assoc id !orderings) then begin
      let body = Array.of_list b.PG.rule.L.Rule.body in
      let used = Array.make (Array.length body) false in
      let positions =
        List.filter_map
          (fun child ->
            let key = lit_key (literal_of_child child) in
            let rec find i =
              if i >= Array.length body then None
              else if (not used.(i)) && String.equal (lit_key body.(i)) key then begin
                used.(i) <- true;
                Some i
              end
              else find (i + 1)
            in
            find 0)
          b.PG.children
      in
      if List.length positions = Array.length body then
        orderings := (id, positions) :: !orderings
    end
  in
  let rec go (node : PG.or_node) =
    List.iter
      (fun b ->
        record b;
        List.iter (function PG.Subgoal n -> go n | PG.Condition _ -> ()) b.PG.children)
      node.PG.branches
  in
  go g.PG.root;
  List.rev !orderings
