type t = { id : string; head : Atom.t; body : Literal.t list }

let make ~id head body = { id; head; body }

let uniq xs =
  let rec loop seen = function
    | [] -> List.rev seen
    | x :: rest -> loop (if List.mem x seen then seen else x :: seen) rest
  in
  loop [] xs

let head_vars r = Atom.vars r.head
let body_vars r = uniq (List.concat_map Literal.vars r.body)
let vars r = uniq (head_vars r @ body_vars r)

let rename_apart k r =
  let f x = Printf.sprintf "%s_%d" x k in
  { r with head = Atom.rename f r.head; body = List.map (Literal.rename f) r.body }

let is_fact r = r.body = [] && Atom.is_ground r.head

let pp ppf r =
  if r.body = [] then Format.fprintf ppf "%s: %a." r.id Atom.pp r.head
  else
    Format.fprintf ppf "%s: %a <- %a." r.id Atom.pp r.head
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ") Literal.pp)
      r.body

let to_string r = Format.asprintf "%a" pp r
