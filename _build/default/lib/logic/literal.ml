module V = Braid_relalg.Value
module RP = Braid_relalg.Row_pred

type expr =
  | Term of Term.t
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type t =
  | Rel of Atom.t
  | Cmp of RP.cmp * expr * expr

let rel a = Rel a
let cmp c a b = Cmp (c, Term a, Term b)

let rec expr_vars = function
  | Term (Term.Var x) -> [ x ]
  | Term (Term.Const _) -> []
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> expr_vars a @ expr_vars b

let vars = function
  | Rel a -> Atom.vars a
  | Cmp (_, a, b) ->
    let rec uniq seen = function
      | [] -> List.rev seen
      | x :: rest -> uniq (if List.mem x seen then seen else x :: seen) rest
    in
    uniq [] (expr_vars a @ expr_vars b)

let rec apply_expr s = function
  | Term t -> Term (Subst.resolve s t)
  | Add (a, b) -> Add (apply_expr s a, apply_expr s b)
  | Sub (a, b) -> Sub (apply_expr s a, apply_expr s b)
  | Mul (a, b) -> Mul (apply_expr s a, apply_expr s b)
  | Div (a, b) -> Div (apply_expr s a, apply_expr s b)

let apply s = function
  | Rel a -> Rel (Subst.apply_atom s a)
  | Cmp (c, a, b) -> Cmp (c, apply_expr s a, apply_expr s b)

let rec eval_expr = function
  | Term (Term.Const v) -> Some v
  | Term (Term.Var _) -> None
  | Add (a, b) -> bin V.add a b
  | Sub (a, b) -> bin V.sub a b
  | Mul (a, b) -> bin V.mul a b
  | Div (a, b) -> bin V.div a b

and bin f a b =
  match eval_expr a, eval_expr b with
  | Some x, Some y -> Some (f x y)
  | None, _ | _, None -> None

let eval_cmp = function
  | Rel _ -> None
  | Cmp (c, a, b) ->
    (match eval_expr a, eval_expr b with
     | Some x, Some y -> Some (RP.cmp_holds c x y)
     | None, _ | _, None -> None)

let is_builtin = function Rel _ -> false | Cmp _ -> true

let rec rename_expr f = function
  | Term (Term.Var x) -> Term (Term.Var (f x))
  | Term (Term.Const _) as e -> e
  | Add (a, b) -> Add (rename_expr f a, rename_expr f b)
  | Sub (a, b) -> Sub (rename_expr f a, rename_expr f b)
  | Mul (a, b) -> Mul (rename_expr f a, rename_expr f b)
  | Div (a, b) -> Div (rename_expr f a, rename_expr f b)

let rename f = function
  | Rel a -> Rel (Atom.rename f a)
  | Cmp (c, a, b) -> Cmp (c, rename_expr f a, rename_expr f b)

let pp_cmp ppf (c : RP.cmp) =
  Format.pp_print_string ppf
    (match c with
     | RP.Eq -> "=" | RP.Ne -> "<>" | RP.Lt -> "<" | RP.Le -> "<=" | RP.Gt -> ">" | RP.Ge -> ">=")

let rec pp_expr ppf = function
  | Term t -> Term.pp ppf t
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_expr a pp_expr b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp_expr a pp_expr b

let pp ppf = function
  | Rel a -> Atom.pp ppf a
  | Cmp (c, a, b) -> Format.fprintf ppf "%a %a %a" pp_expr a pp_cmp c pp_expr b

let to_string l = Format.asprintf "%a" pp l
