(** Logic terms.

    BrAID's languages (AI queries, CAQL, advice) are function-free Horn
    logic, so a term is just a variable or a constant; this keeps
    unification and subsumption decidable and cheap. *)

type t =
  | Var of string
  | Const of Braid_relalg.Value.t

val var : string -> t
val int : int -> t
val str : string -> t
val const : Braid_relalg.Value.t -> t

val is_var : t -> bool
val is_const : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
