type t = {
  base : (string, int) Hashtbl.t;
  rules : (string, Rule.t list ref) Hashtbl.t; (* head pred -> rules, reversed *)
  by_id : (string, Rule.t) Hashtbl.t;
  mutable soas : Soa.t list;
}

let create () =
  { base = Hashtbl.create 16; rules = Hashtbl.create 16; by_id = Hashtbl.create 16; soas = [] }

let is_base kb p = Hashtbl.mem kb.base p
let is_derived kb p = Hashtbl.mem kb.rules p
let base_arity kb p = Hashtbl.find_opt kb.base p

let declare_base kb p ~arity =
  (match Hashtbl.find_opt kb.base p with
   | Some a when a <> arity ->
     invalid_arg (Printf.sprintf "Kb.declare_base: %s already declared with arity %d" p a)
   | Some _ | None -> ());
  if is_derived kb p then
    invalid_arg (Printf.sprintf "Kb.declare_base: %s is already defined by rules" p);
  Hashtbl.replace kb.base p arity

let add_rule kb r =
  let p = r.Rule.head.Atom.pred in
  if is_base kb p then
    invalid_arg (Printf.sprintf "Kb.add_rule: %s is declared as a base relation" p);
  if Hashtbl.mem kb.by_id r.Rule.id then
    invalid_arg (Printf.sprintf "Kb.add_rule: duplicate rule id %s" r.Rule.id);
  Hashtbl.replace kb.by_id r.Rule.id r;
  match Hashtbl.find_opt kb.rules p with
  | Some cell -> cell := r :: !cell
  | None -> Hashtbl.replace kb.rules p (ref [ r ])

let add_soa kb s = kb.soas <- s :: kb.soas

let rules_for kb p =
  match Hashtbl.find_opt kb.rules p with Some cell -> List.rev !cell | None -> []

let all_rules kb =
  Hashtbl.fold (fun _ cell acc -> List.rev_append !cell acc) kb.rules []
  |> List.sort (fun a b -> String.compare a.Rule.id b.Rule.id)

let rule_by_id kb id = Hashtbl.find_opt kb.by_id id
let soas kb = List.rev kb.soas

let mutually_exclusive kb p q =
  List.exists
    (function
      | Soa.Mutual_exclusion (a, b) ->
        (String.equal a p && String.equal b q) || (String.equal a q && String.equal b p)
      | Soa.Functional_dependency _ | Soa.Recursive_structure _ -> false)
    kb.soas

let functional_dependencies kb p =
  List.filter
    (function
      | Soa.Functional_dependency { pred; _ } -> String.equal pred p
      | Soa.Mutual_exclusion _ | Soa.Recursive_structure _ -> false)
    (soas kb)

(* Predicates of the body atoms of a rule. *)
let body_preds r =
  List.filter_map
    (function Literal.Rel a -> Some a.Atom.pred | Literal.Cmp _ -> None)
    r.Rule.body

let recursive_preds kb =
  (* p is recursive if p reaches p in the rule dependency graph. *)
  let reaches_self p =
    let visited = Hashtbl.create 16 in
    let rec dfs q =
      List.exists
        (fun r ->
          List.exists
            (fun dep ->
              String.equal dep p
              ||
              if Hashtbl.mem visited dep then false
              else begin
                Hashtbl.add visited dep ();
                dfs dep
              end)
            (body_preds r))
        (rules_for kb q)
    in
    dfs p
  in
  Hashtbl.fold (fun p _ acc -> if reaches_self p then p :: acc else acc) kb.rules []
  |> List.sort String.compare

let base_preds_reachable kb query =
  let visited = Hashtbl.create 16 in
  let bases = ref [] in
  let rec dfs p =
    if not (Hashtbl.mem visited p) then begin
      Hashtbl.add visited p ();
      if is_base kb p then bases := p :: !bases
      else List.iter (fun r -> List.iter dfs (body_preds r)) (rules_for kb p)
    end
  in
  dfs query.Atom.pred;
  List.sort String.compare !bases

type lint =
  | Unsafe_rule of { rule_id : string; variable : string }
  | Undefined_predicate of { rule_id : string; pred : string }
  | Unreachable_rule of { rule_id : string }
  | Mutex_same_pred of string

let lint kb =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let defined p = is_base kb p || is_derived kb p in
  (* per-rule checks *)
  List.iter
    (fun (r : Rule.t) ->
      let bound =
        List.concat_map
          (function Literal.Rel a -> Atom.vars a | Literal.Cmp _ -> [])
          r.Rule.body
      in
      (* facts are their own binders; a ground head is fine *)
      List.iter
        (fun v ->
          if not (List.mem v bound) then
            add (Unsafe_rule { rule_id = r.Rule.id; variable = v }))
        (Rule.head_vars r);
      List.iter
        (fun lit ->
          match lit with
          | Literal.Cmp _ ->
            List.iter
              (fun v ->
                if not (List.mem v bound) then
                  add (Unsafe_rule { rule_id = r.Rule.id; variable = v }))
              (Literal.vars lit)
          | Literal.Rel a ->
            if not (defined a.Atom.pred) then
              add (Undefined_predicate { rule_id = r.Rule.id; pred = a.Atom.pred }))
        r.Rule.body)
    (all_rules kb);
  (* reachability: a rule is reachable if its head predicate is used by
     some other rule's body, or it is the only definition layer (top-level
     entry points are fine) — we flag rules whose head predicate is used
     nowhere AND whose body mentions no defined predicate (isolated). *)
  let used_in_bodies =
    List.concat_map
      (fun (r : Rule.t) ->
        List.filter_map
          (function Literal.Rel a -> Some a.Atom.pred | Literal.Cmp _ -> None)
          r.Rule.body)
      (all_rules kb)
  in
  List.iter
    (fun (r : Rule.t) ->
      let head_pred = r.Rule.head.Atom.pred in
      let body_defined =
        List.exists
          (function Literal.Rel a -> defined a.Atom.pred | Literal.Cmp _ -> false)
          r.Rule.body
      in
      if r.Rule.body <> [] && (not body_defined) && not (List.mem head_pred used_in_bodies)
      then add (Unreachable_rule { rule_id = r.Rule.id }))
    (all_rules kb);
  List.iter
    (function
      | Soa.Mutual_exclusion (p, q) when String.equal p q -> add (Mutex_same_pred p)
      | Soa.Mutual_exclusion _ | Soa.Functional_dependency _ | Soa.Recursive_structure _ -> ())
    (soas kb);
  List.rev !findings

let pp_lint ppf = function
  | Unsafe_rule { rule_id; variable } ->
    Format.fprintf ppf "rule %s: variable %s is not bound by any body relation" rule_id
      variable
  | Undefined_predicate { rule_id; pred } ->
    Format.fprintf ppf "rule %s: predicate %s is neither base nor defined" rule_id pred
  | Unreachable_rule { rule_id } ->
    Format.fprintf ppf "rule %s: isolated (nothing defined in its body, head used nowhere)"
      rule_id
  | Mutex_same_pred p ->
    Format.fprintf ppf "mutual exclusion of %s with itself makes it empty" p

let pp ppf kb =
  Format.fprintf ppf "@[<v>";
  Hashtbl.iter
    (fun p arity -> Format.fprintf ppf "base %s/%d@," p arity)
    kb.base;
  List.iter (fun r -> Format.fprintf ppf "%a@," Rule.pp r) (all_rules kb);
  List.iter (fun s -> Format.fprintf ppf "%a@," Soa.pp s) (soas kb);
  Format.fprintf ppf "@]"
