(** The knowledge base controlled by the IE (§3: "the IE controls the
    knowledge base"): rules over derived relations, declarations of which
    predicates are database (base) relations, and second-order assertions. *)

type t

val create : unit -> t

val declare_base : t -> string -> arity:int -> unit
(** Declares a predicate as a database relation (resolved via the CMS).
    Raises [Invalid_argument] if already declared with another arity or
    already defined by rules. *)

val add_rule : t -> Rule.t -> unit
(** Raises [Invalid_argument] if the head predicate is declared base or the
    rule id is already used. *)

val add_soa : t -> Soa.t -> unit

val is_base : t -> string -> bool
val is_derived : t -> string -> bool
val base_arity : t -> string -> int option

val rules_for : t -> string -> Rule.t list
(** Rules whose head predicate is the given one, in insertion order. *)

val all_rules : t -> Rule.t list
val rule_by_id : t -> string -> Rule.t option
val soas : t -> Soa.t list

val mutually_exclusive : t -> string -> string -> bool
(** Symmetric lookup of mutual-exclusion SOAs. *)

val functional_dependencies : t -> string -> Soa.t list
val recursive_preds : t -> string list
(** Predicates that (transitively) depend on themselves through rules. *)

val base_preds_reachable : t -> Atom.t -> string list
(** All base predicates reachable from the query's predicate through rules —
    the paper's "simplest kind of advice" (§4.2). *)

type lint =
  | Unsafe_rule of { rule_id : string; variable : string }
      (** a head or comparison variable not bound by any body relation *)
  | Undefined_predicate of { rule_id : string; pred : string }
      (** a body relation that is neither base nor defined by rules *)
  | Unreachable_rule of { rule_id : string }
      (** no rule chain links it to any other rule or declared relation —
          usually a typo in a predicate name *)
  | Mutex_same_pred of string  (** mutual exclusion of a predicate with itself *)

val lint : t -> lint list
(** Static checks a production knowledge base should pass; an empty list
    means clean. [Undefined_predicate] findings are what Prolog would
    silently fail on. *)

val pp_lint : Format.formatter -> lint -> unit

val pp : Format.formatter -> t -> unit
