let terms s a b =
  let a = Subst.resolve s a and b = Subst.resolve s b in
  match a, b with
  | Term.Const u, Term.Const v -> if Braid_relalg.Value.equal u v then Some s else None
  | Term.Var x, Term.Var y -> if String.equal x y then Some s else Some (Subst.bind x b s)
  | Term.Var x, Term.Const _ -> Some (Subst.bind x b s)
  | Term.Const _, Term.Var y -> Some (Subst.bind y a s)

let rec unify_lists s la lb =
  match la, lb with
  | [], [] -> Some s
  | a :: ra, b :: rb -> (match terms s a b with Some s' -> unify_lists s' ra rb | None -> None)
  | [], _ :: _ | _ :: _, [] -> None

let atoms s a b =
  if String.equal a.Atom.pred b.Atom.pred && Atom.arity a = Atom.arity b then
    unify_lists s a.Atom.args b.Atom.args
  else None

let match_terms s ~general ~specific =
  (* One-shot mapping: a bound general variable must map to the identical
     specific term; chains are never followed (the specific side's
     variables are opaque here). *)
  match general, specific with
  | Term.Const u, Term.Const v -> if Braid_relalg.Value.equal u v then Some s else None
  | Term.Const _, Term.Var _ -> None
  | Term.Var x, t ->
    (match Subst.find x s with
     | Some t' -> if Term.equal t t' then Some s else None
     | None -> Some (Subst.bind x t s))

let match_atoms s ~general ~specific =
  if
    String.equal general.Atom.pred specific.Atom.pred
    && Atom.arity general = Atom.arity specific
  then
    List.fold_left2
      (fun acc g sp ->
        match acc with None -> None | Some s -> match_terms s ~general:g ~specific:sp)
      (Some s) general.Atom.args specific.Atom.args
  else None

let variant a b =
  match match_atoms Subst.empty ~general:a ~specific:b with
  | None -> false
  | Some s ->
    (* The matcher binds a-vars to b-terms; a variant needs the binding to
       be a bijection onto variables. *)
    let images = List.map snd (Subst.bindings s) in
    List.for_all Term.is_var images
    && List.length (List.sort_uniq Term.compare images) = List.length images
    && Option.is_some (match_atoms Subst.empty ~general:b ~specific:a)
