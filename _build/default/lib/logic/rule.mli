(** Horn rules: [head <- body]. Each rule carries an identifier (the paper's
    rule identifiers R1, R2, ... recorded in view specifications for
    debugging and answer justification, §4.2.1). *)

type t = { id : string; head : Atom.t; body : Literal.t list }

val make : id:string -> Atom.t -> Literal.t list -> t

val vars : t -> string list
(** Distinct variables of head then body, in order of first occurrence. *)

val head_vars : t -> string list
val body_vars : t -> string list

val rename_apart : int -> t -> t
(** [rename_apart k r] suffixes every variable with ["_k"]; used to keep
    resolution steps standardized apart. *)

val is_fact : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
