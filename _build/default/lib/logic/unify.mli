(** Unification and one-way matching over function-free terms.

    One-way matching implements the paper's subsumption-check primitive
    (§5.3.2): "a constant in the predicate in the subquery can match with
    the same constant or a variable at the corresponding position in the
    predicate in the cache element, but a variable can only match with a
    variable". *)

val terms : Subst.t -> Term.t -> Term.t -> Subst.t option
(** Two-way unification, extending the given substitution. *)

val atoms : Subst.t -> Atom.t -> Atom.t -> Subst.t option
(** Fails on predicate or arity mismatch. *)

val match_terms : Subst.t -> general:Term.t -> specific:Term.t -> Subst.t option
(** One-way: only variables of [general] may be bound. A variable of
    [specific] can only be matched by a [general] variable; a constant of
    [specific] is matched by the same constant or a [general] variable. *)

val match_atoms : Subst.t -> general:Atom.t -> specific:Atom.t -> Subst.t option
(** The two atoms must be standardized apart (no shared variable names);
    otherwise applying the resulting substitution can collapse chains. *)

val variant : Atom.t -> Atom.t -> bool
(** True when the atoms are equal up to consistent variable renaming. *)
