type t = { pred : string; args : Term.t list }

let make pred args = { pred; args }
let arity a = List.length a.args

let vars a =
  let rec loop seen = function
    | [] -> List.rev seen
    | Term.Var x :: rest -> loop (if List.mem x seen then seen else x :: seen) rest
    | Term.Const _ :: rest -> loop seen rest
  in
  loop [] a.args

let constants a =
  List.filter_map (function Term.Const v -> Some v | Term.Var _ -> None) a.args

let is_ground a = List.for_all Term.is_const a.args

let equal a b =
  String.equal a.pred b.pred
  && List.length a.args = List.length b.args
  && List.for_all2 Term.equal a.args b.args

let rename f a =
  { a with args = List.map (function Term.Var x -> Term.Var (f x) | Term.Const _ as c -> c) a.args }

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
    a.args

let to_string a = Format.asprintf "%a" pp a
