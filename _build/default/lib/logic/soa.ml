type t =
  | Mutual_exclusion of string * string
  | Functional_dependency of { pred : string; determinant : int list; dependent : int list }
  | Recursive_structure of { pred : string; base_pred : string }

let pp_positions ppf l =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    l

let pp ppf = function
  | Mutual_exclusion (p, q) -> Format.fprintf ppf "mutex(%s, %s)" p q
  | Functional_dependency { pred; determinant; dependent } ->
    Format.fprintf ppf "fd(%s: %a -> %a)" pred pp_positions determinant pp_positions dependent
  | Recursive_structure { pred; base_pred } ->
    Format.fprintf ppf "recursive(%s over %s)" pred base_pred
