(** Atomic formulas: a predicate symbol applied to terms.

    An AI query is an atom (§3); database goals and rule heads/antecedents
    are atoms. *)

type t = { pred : string; args : Term.t list }

val make : string -> Term.t list -> t
val arity : t -> int
val vars : t -> string list
(** Distinct variables in argument order of first occurrence. *)

val constants : t -> Braid_relalg.Value.t list
val is_ground : t -> bool
val equal : t -> t -> bool
val rename : (string -> string) -> t -> t
(** Applies a variable renaming to every variable occurrence. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
