(** Second-order assertions (paper §4: "we include in our knowledge base
    limited kinds of second-order assertions").

    - {b Mutual exclusion}: two predicates are disjoint on identical
      argument tuples. Used by the problem graph shaper for culling and by
      the path expression creator to set an alternation's selection term to
      one (§4.2.2).
    - {b Functional dependency}: within a predicate, the determinant
      argument positions functionally determine the dependent positions.
      Used for producer/consumer ordering and cardinality estimation (§4.1).
    - {b Recursive structure}: marks a relation as a recursive structure of
      another relation (cf. [OHAR87]); the compiled strategy realizes it
      with a fixpoint operator (§2's second-order templates). *)

type t =
  | Mutual_exclusion of string * string
      (** predicate names, same arity, disjoint extensions *)
  | Functional_dependency of { pred : string; determinant : int list; dependent : int list }
  | Recursive_structure of { pred : string; base_pred : string }

val pp : Format.formatter -> t -> unit
