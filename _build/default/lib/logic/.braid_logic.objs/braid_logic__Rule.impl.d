lib/logic/rule.ml: Atom Format List Literal Printf
