lib/logic/atom.mli: Braid_relalg Format Term
