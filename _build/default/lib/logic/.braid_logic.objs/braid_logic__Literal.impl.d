lib/logic/literal.ml: Atom Braid_relalg Format List Subst Term
