lib/logic/term.ml: Braid_relalg Format String
