lib/logic/kb.ml: Atom Format Hashtbl List Literal Printf Rule Soa String
