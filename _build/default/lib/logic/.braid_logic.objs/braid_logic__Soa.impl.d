lib/logic/soa.ml: Format
