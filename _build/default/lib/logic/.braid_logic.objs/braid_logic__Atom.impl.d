lib/logic/atom.ml: Format List String Term
