lib/logic/unify.ml: Atom Braid_relalg List Option String Subst Term
