lib/logic/literal.mli: Atom Braid_relalg Format Subst Term
