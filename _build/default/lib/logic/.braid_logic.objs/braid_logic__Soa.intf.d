lib/logic/soa.mli: Format
