lib/logic/subst.ml: Atom Format List Map String Term
