lib/logic/term.mli: Braid_relalg Format
