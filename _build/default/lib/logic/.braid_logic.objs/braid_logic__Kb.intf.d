lib/logic/kb.mli: Atom Format Rule Soa
