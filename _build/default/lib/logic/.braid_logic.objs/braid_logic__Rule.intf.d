lib/logic/rule.mli: Atom Format Literal
