module V = Braid_relalg.Value

type t =
  | Var of string
  | Const of V.t

let var x = Var x
let int n = Const (V.Int n)
let str s = Const (V.Str s)
let const v = Const v
let is_var = function Var _ -> true | Const _ -> false
let is_const t = not (is_var t)

let equal a b =
  match a, b with
  | Var x, Var y -> String.equal x y
  | Const u, Const v -> V.equal u v
  | Var _, Const _ | Const _, Var _ -> false

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const u, Const v -> V.compare u v
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let pp ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Const v -> V.pp ppf v

let to_string t = Format.asprintf "%a" pp t
