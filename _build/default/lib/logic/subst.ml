module M = Map.Make (String)

type t = Term.t M.t

let empty = M.empty
let is_empty = M.is_empty
let bind x t s = M.add x t s
let find x s = M.find_opt x s

let rec resolve s t =
  match t with
  | Term.Const _ -> t
  | Term.Var x ->
    (match M.find_opt x s with
     | None -> t
     | Some t' -> if Term.equal t t' then t else resolve s t')

let apply_atom s a = { a with Atom.args = List.map (resolve s) a.Atom.args }

let bindings s = M.bindings (M.map (resolve s) s)

let restrict vars s =
  M.fold
    (fun x t acc -> if List.mem x vars then M.add x (resolve s t) acc else acc)
    s M.empty

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (x, t) -> Format.fprintf ppf "%s -> %a" x Term.pp t))
    (bindings s)
