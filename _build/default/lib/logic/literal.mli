(** Body literals: relation occurrences or built-in (evaluable) predicates.

    Built-ins are the paper's "evaluable relations" (arithmetic and numeric
    comparison, §4.1): they are never looked up in the DBMS and are
    evaluated by the IE or the CMS once their arguments are bound. *)

type expr =
  | Term of Term.t
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type t =
  | Rel of Atom.t  (** user-defined or database relation occurrence *)
  | Cmp of Braid_relalg.Row_pred.cmp * expr * expr

val rel : Atom.t -> t
val cmp : Braid_relalg.Row_pred.cmp -> Term.t -> Term.t -> t

val expr_vars : expr -> string list
val vars : t -> string list

val apply : Subst.t -> t -> t

val eval_expr : expr -> Braid_relalg.Value.t option
(** [None] when the expression still contains a variable. *)

val eval_cmp : t -> bool option
(** Evaluates a ground [Cmp]; [None] for [Rel] or non-ground comparisons. *)

val is_builtin : t -> bool
val rename : (string -> string) -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
