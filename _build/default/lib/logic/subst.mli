(** Substitutions: finite maps from variable names to terms.

    Because terms are function-free, a binding chain can only be
    [Var -> Var -> ... -> Const]; [resolve] follows such chains. *)

type t

val empty : t
val is_empty : t -> bool
val bind : string -> Term.t -> t -> t
(** Unchecked bind; callers (the unifier) maintain consistency. *)

val find : string -> t -> Term.t option

val resolve : t -> Term.t -> Term.t
(** Follows variable chains to the final binding. *)

val apply_atom : t -> Atom.t -> Atom.t
val bindings : t -> (string * Term.t) list
(** Fully-resolved bindings, sorted by variable name. *)

val restrict : string list -> t -> t
(** Keeps only bindings for the given variables (resolved first). *)

val pp : Format.formatter -> t -> unit
