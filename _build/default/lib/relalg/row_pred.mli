(** Row-level predicates evaluated against a tuple.

    Operands are column positions or literals; small arithmetic terms are
    allowed so that CAQL's evaluable predicates can be pushed into scans. *)

type operand =
  | Col of int
  | Lit of Value.t
  | Add of operand * operand
  | Sub of operand * operand
  | Mul of operand * operand
  | Div of operand * operand

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * operand * operand
  | And of t list
  | Or of t list
  | Not of t

val eval_operand : operand -> Tuple.t -> Value.t
val eval : t -> Tuple.t -> bool

val conj : t list -> t
(** Conjunction with [True]/[False] simplification. *)

val shift : int -> t -> t
(** [shift k p] adds [k] to every column reference (for predicates that were
    written against the right side of a product). *)

val cmp_holds : cmp -> Value.t -> Value.t -> bool
val negate_cmp : cmp -> cmp
val pp : Format.formatter -> t -> unit
