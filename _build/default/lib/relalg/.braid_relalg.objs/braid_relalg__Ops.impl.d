lib/relalg/ops.ml: Index List Relation Row_pred Schema Tuple Value
