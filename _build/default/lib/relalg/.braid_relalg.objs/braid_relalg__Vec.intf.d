lib/relalg/vec.mli:
