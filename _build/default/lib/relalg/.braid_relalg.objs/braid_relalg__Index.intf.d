lib/relalg/index.mli: Relation Tuple Value
