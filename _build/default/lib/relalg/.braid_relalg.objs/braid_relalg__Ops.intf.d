lib/relalg/ops.mli: Index Relation Row_pred Value
