lib/relalg/relation.ml: Array Format Hashtbl List Printf Schema String Tuple Value Vec
