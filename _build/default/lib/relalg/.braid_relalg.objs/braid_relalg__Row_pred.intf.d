lib/relalg/row_pred.mli: Format Tuple Value
