lib/relalg/vec.ml: Array
