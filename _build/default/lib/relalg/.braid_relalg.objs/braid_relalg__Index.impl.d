lib/relalg/index.ml: Hashtbl List Relation Tuple Value
