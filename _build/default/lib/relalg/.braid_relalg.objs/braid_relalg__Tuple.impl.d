lib/relalg/tuple.ml: Array Format List Stdlib Value
