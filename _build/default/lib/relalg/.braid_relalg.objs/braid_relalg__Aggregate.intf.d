lib/relalg/aggregate.mli: Relation
