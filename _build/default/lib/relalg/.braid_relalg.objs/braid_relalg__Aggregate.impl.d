lib/relalg/aggregate.ml: Hashtbl List Printf Relation Schema Tuple Value
