lib/relalg/value.ml: Float Format Hashtbl Stdlib String
