lib/relalg/row_pred.ml: Format List Tuple Value
