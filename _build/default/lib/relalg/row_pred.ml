type operand =
  | Col of int
  | Lit of Value.t
  | Add of operand * operand
  | Sub of operand * operand
  | Mul of operand * operand
  | Div of operand * operand

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * operand * operand
  | And of t list
  | Or of t list
  | Not of t

let rec eval_operand op t =
  match op with
  | Col i -> Tuple.get t i
  | Lit v -> v
  | Add (a, b) -> Value.add (eval_operand a t) (eval_operand b t)
  | Sub (a, b) -> Value.sub (eval_operand a t) (eval_operand b t)
  | Mul (a, b) -> Value.mul (eval_operand a t) (eval_operand b t)
  | Div (a, b) -> Value.div (eval_operand a t) (eval_operand b t)

let cmp_holds c a b =
  let k = Value.compare a b in
  match c with
  | Eq -> k = 0
  | Ne -> k <> 0
  | Lt -> k < 0
  | Le -> k <= 0
  | Gt -> k > 0
  | Ge -> k >= 0

let negate_cmp = function Eq -> Ne | Ne -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt

let rec eval p t =
  match p with
  | True -> true
  | False -> false
  | Cmp (c, a, b) -> cmp_holds c (eval_operand a t) (eval_operand b t)
  | And ps -> List.for_all (fun p -> eval p t) ps
  | Or ps -> List.exists (fun p -> eval p t) ps
  | Not p -> not (eval p t)

let conj ps =
  let ps = List.filter (fun p -> p <> True) ps in
  if List.exists (fun p -> p = False) ps then False
  else match ps with [] -> True | [ p ] -> p | ps -> And ps

let rec shift_operand k = function
  | Col i -> Col (i + k)
  | Lit v -> Lit v
  | Add (a, b) -> Add (shift_operand k a, shift_operand k b)
  | Sub (a, b) -> Sub (shift_operand k a, shift_operand k b)
  | Mul (a, b) -> Mul (shift_operand k a, shift_operand k b)
  | Div (a, b) -> Div (shift_operand k a, shift_operand k b)

let rec shift k = function
  | True -> True
  | False -> False
  | Cmp (c, a, b) -> Cmp (c, shift_operand k a, shift_operand k b)
  | And ps -> And (List.map (shift k) ps)
  | Or ps -> Or (List.map (shift k) ps)
  | Not p -> Not (shift k p)

let pp_cmp ppf c =
  Format.pp_print_string ppf
    (match c with Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let rec pp_operand ppf = function
  | Col i -> Format.fprintf ppf "#%d" i
  | Lit v -> Value.pp ppf v
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_operand a pp_operand b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_operand a pp_operand b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_operand a pp_operand b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp_operand a pp_operand b

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (c, a, b) -> Format.fprintf ppf "%a %a %a" pp_operand a pp_cmp c pp_operand b
  | And ps ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " and ") pp)
      ps
  | Or ps ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " or ") pp)
      ps
  | Not p -> Format.fprintf ppf "not %a" pp p
