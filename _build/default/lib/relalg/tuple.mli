(** Tuples: immutable-by-convention arrays of values. *)

type t = Value.t array

val arity : t -> int
val get : t -> int -> Value.t
val make : Value.t list -> t
val to_list : t -> Value.t list
val project : t -> int list -> t
val concat : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val key : t -> int list -> Value.t list
(** [key t cols] extracts the listed columns, for use as a hash key. *)

val pp : Format.formatter -> t -> unit
