type t = Value.t array

let arity = Array.length
let get t i = t.(i)
let make = Array.of_list
let to_list = Array.to_list
let project t cols = Array.of_list (List.map (fun i -> t.(i)) cols)
let concat = Array.append

let compare a b =
  let n = Array.length a and m = Array.length b in
  if n <> m then Stdlib.compare n m
  else
    let rec loop i =
      if i = n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let key t cols = List.map (fun i -> t.(i)) cols

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (to_list t)
