(** Grouping and aggregation (CAQL's AGG/SETOF-style second-order
    operations, which the remote DBMS of the paper's era did not support and
    the CMS therefore evaluates itself). *)

type spec =
  | Count
  | Sum of int
  | Avg of int
  | Min of int
  | Max of int

val name_of_spec : spec -> string

val group_by : int list -> spec list -> Relation.t -> Relation.t
(** [group_by keys specs r] groups on the key columns and appends one column
    per aggregate. The output schema is the key attributes followed by one
    attribute per spec (named e.g. [count], [sum_price]). Groups appear in
    first-occurrence order. With [keys = []] the result is a single row
    (aggregation over the whole relation), even when [r] is empty. *)
