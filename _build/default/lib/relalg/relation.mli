(** Named relation extensions: a schema plus a bag of tuples.

    Relations are bags; [distinct] converts to set semantics. The remote
    engine, the cache manager and the CAQL evaluator all operate on this
    representation. *)

type t

val create : ?name:string -> Schema.t -> t
val of_tuples : ?name:string -> Schema.t -> Tuple.t list -> t

val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int

val add : t -> Tuple.t -> unit
(** Raises [Invalid_argument] on arity mismatch. *)

val get : t -> int -> Tuple.t
val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> Tuple.t list
val mem : t -> Tuple.t -> bool

val distinct : t -> t
(** Set-semantics copy, preserving first-occurrence order. *)

val copy : ?name:string -> t -> t
val with_name : string -> t -> t
(** Shares the underlying tuple storage. *)

val sort_by : (Tuple.t -> Tuple.t -> int) -> t -> t

val bytes_estimate : t -> int
(** Rough in-memory footprint used for cache space accounting. *)

val pp : Format.formatter -> t -> unit
(** Tabular rendering (for examples and debugging). *)
