type spec =
  | Count
  | Sum of int
  | Avg of int
  | Min of int
  | Max of int

let name_of_spec = function
  | Count -> "count"
  | Sum i -> Printf.sprintf "sum_%d" i
  | Avg i -> Printf.sprintf "avg_%d" i
  | Min i -> Printf.sprintf "min_%d" i
  | Max i -> Printf.sprintf "max_%d" i

module Key = struct
  type t = Value.t list

  let equal a b = List.length a = List.length b && List.for_all2 Value.equal a b
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 k
end

module Key_tbl = Hashtbl.Make (Key)

(* Running state of one aggregate within one group. *)
type state = { mutable count : int; mutable sum : Value.t; mutable min : Value.t option; mutable max : Value.t option }

let new_state () = { count = 0; sum = Value.Int 0; min = None; max = None }

let feed st v =
  st.count <- st.count + 1;
  st.sum <- Value.add st.sum v;
  (match st.min with
   | None -> st.min <- Some v
   | Some m -> if Value.compare v m < 0 then st.min <- Some v);
  match st.max with
  | None -> st.max <- Some v
  | Some m -> if Value.compare v m > 0 then st.max <- Some v

let finish spec st =
  match spec with
  | Count -> Value.Int st.count
  | Sum _ -> if st.count = 0 then Value.Int 0 else st.sum
  | Avg _ ->
    if st.count = 0 then Value.Null
    else Value.div st.sum (Value.Int st.count)
  | Min _ -> (match st.min with Some v -> v | None -> Value.Null)
  | Max _ -> (match st.max with Some v -> v | None -> Value.Null)

let spec_col = function Count -> None | Sum i | Avg i | Min i | Max i -> Some i

let out_schema keys specs in_schema =
  let key_attrs = List.map (fun i -> (Schema.name_at in_schema i, Schema.ty_at in_schema i)) keys in
  let agg_attrs =
    List.map
      (fun sp ->
        let ty =
          match sp with
          | Count -> Value.Tint
          | Avg _ -> Value.Tfloat
          | Sum i | Min i | Max i -> Schema.ty_at in_schema i
        in
        (name_of_spec sp, ty))
      specs
  in
  (* Aggregate names may clash with key names; disambiguate with a prime. *)
  let rec uniq seen = function
    | [] -> []
    | (n, ty) :: rest ->
      let n = if List.mem n seen then n ^ "'" else n in
      (n, ty) :: uniq (n :: seen) rest
  in
  Schema.make (uniq [] (key_attrs @ agg_attrs))

let group_by keys specs r =
  let in_schema = Relation.schema r in
  let schema = out_schema keys specs in_schema in
  let groups = Key_tbl.create 64 in
  let order = ref [] in
  Relation.iter
    (fun t ->
      let k = Tuple.key t keys in
      let states =
        match Key_tbl.find_opt groups k with
        | Some s -> s
        | None ->
          let s = List.map (fun _ -> new_state ()) specs in
          Key_tbl.add groups k s;
          order := k :: !order;
          s
      in
      List.iter2
        (fun sp st ->
          match spec_col sp with
          | None -> feed st (Value.Int 1)
          | Some c -> feed st (Tuple.get t c))
        specs states)
    r;
  let out = Relation.create ~name:(Relation.name r) schema in
  let emit k =
    let states = Key_tbl.find groups k in
    let aggs = List.map2 finish specs states in
    Relation.add out (Tuple.make (k @ aggs))
  in
  (match (keys, !order) with
   | [], [] ->
     (* Whole-relation aggregation of an empty input still yields one row. *)
     let states = List.map (fun _ -> new_state ()) specs in
     let aggs = List.map2 finish specs states in
     Relation.add out (Tuple.make aggs)
   | _, order -> List.iter emit (List.rev order));
  out
