(** Growable arrays.

    OCaml 5.1 does not ship [Dynarray]; this is the small subset the
    relational layer needs: amortized O(1) push, O(1) random access. *)

type 'a t

val create : unit -> 'a t

val make : int -> 'a -> 'a t
(** [make n x] is a vector of length [n] filled with [x]. *)

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t

val copy : 'a t -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort. *)
