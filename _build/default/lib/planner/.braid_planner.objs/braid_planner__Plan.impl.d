lib/planner/plan.ml: Format List
