lib/planner/qpo.mli: Braid_advice Braid_cache Braid_caql Braid_relalg Braid_remote Braid_stream Plan
