lib/planner/qpo.ml: Braid_advice Braid_cache Braid_caql Braid_logic Braid_relalg Braid_remote Braid_stream Braid_subsume Cost Float Hashtbl List Logs Option Plan Printf Stdlib String
