lib/planner/cost.mli: Braid_caql Braid_logic Braid_remote
