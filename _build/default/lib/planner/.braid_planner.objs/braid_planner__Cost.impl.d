lib/planner/cost.ml: Array Braid_caql Braid_logic Braid_remote Hashtbl List Option
