type step =
  | Exact_hit of { element : string }
  | Use_element of { element : string; covered_atoms : int list }
  | Ship_subquery of { sql : string; cached_as : string option }
  | Remote_fetch of { sql : string; cached_as : string option }
  | Local_eval of { touched : int }
  | Lazy_answer
  | Generalized of { spec : string; element : string }
  | Prefetch of { spec : string; element : string }
  | Index_built of { element : string; columns : int list }

type t = step list

let pp_cached ppf = function
  | Some id -> Format.fprintf ppf " -> cached as %s" id
  | None -> ()

let pp_step ppf = function
  | Exact_hit { element } -> Format.fprintf ppf "exact hit on %s" element
  | Use_element { element; covered_atoms } ->
    Format.fprintf ppf "use %s (covers atoms %a)" element
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      covered_atoms
  | Ship_subquery { sql; cached_as } ->
    Format.fprintf ppf "ship [%s]%a" sql pp_cached cached_as
  | Remote_fetch { sql; cached_as } ->
    Format.fprintf ppf "fetch [%s]%a" sql pp_cached cached_as
  | Local_eval { touched } -> Format.fprintf ppf "local eval (%d tuples touched)" touched
  | Lazy_answer -> Format.pp_print_string ppf "lazy generator"
  | Generalized { spec; element } ->
    Format.fprintf ppf "generalized %s -> %s" spec element
  | Prefetch { spec; element } -> Format.fprintf ppf "prefetch %s -> %s" spec element
  | Index_built { element; columns } ->
    Format.fprintf ppf "index %s on (%a)" element
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         Format.pp_print_int)
      columns

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,") pp_step)
    t

let to_string t = Format.asprintf "%a" pp t

let used_remote t =
  List.exists
    (function
      | Ship_subquery _ | Remote_fetch _ -> true
      | Exact_hit _ | Use_element _ | Local_eval _ | Lazy_answer | Generalized _ | Prefetch _
      | Index_built _ -> false)
    t

let fully_from_cache t = not (used_remote t)
