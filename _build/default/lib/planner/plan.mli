(** Plans: the partially ordered set of subqueries the QPO produces
    (paper §5: "a program consisting of a partially ordered set of
    subqueries where each subquery is designated for execution by either
    the Cache Manager or by the remote DBMS").

    The executed plan is reported alongside every answer so examples,
    tests and experiments can observe {e how} a query was satisfied. *)

type step =
  | Exact_hit of { element : string }
      (** answered by a cached result with a variant-equal definition *)
  | Use_element of { element : string; covered_atoms : int list }
      (** subsumption-derived reuse of a cached view *)
  | Ship_subquery of { sql : string; cached_as : string option }
      (** a multi-relation subquery executed by the remote DBMS *)
  | Remote_fetch of { sql : string; cached_as : string option }
      (** a single-relation fetch from the remote DBMS *)
  | Local_eval of { touched : int }
      (** Cache Manager / Query Processor work on the rewritten query *)
  | Lazy_answer
      (** the result is a generator; tuples are produced on demand *)
  | Generalized of { spec : string; element : string }
      (** QPO step 1 chose to evaluate a generalization of the IE-query *)
  | Prefetch of { spec : string; element : string }
      (** a predicted-next query was materialized ahead of its arrival *)
  | Index_built of { element : string; columns : int list }

type t = step list

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val used_remote : t -> bool
val fully_from_cache : t -> bool
(** No remote interaction was needed for the query itself (prefetches and
    generalizations are counted separately). *)
