module L = Braid_logic
module A = Braid_caql.Ast
module Catalog = Braid_remote.Catalog
module CM = Braid_remote.Cost_model

let unknown_card = 32

let est_atom catalog (a : L.Atom.t) =
  match Catalog.stats_of catalog a.L.Atom.pred with
  | None -> unknown_card
  | Some stats ->
    let sel =
      List.fold_left ( *. ) 1.0
        (List.mapi
           (fun i t ->
             match t with
             | L.Term.Const _ -> Catalog.eq_selectivity catalog a.L.Atom.pred i
             | L.Term.Var _ -> 1.0)
           a.L.Atom.args)
    in
    max 1 (int_of_float (ceil (float_of_int stats.Catalog.cardinality *. sel)))

let distinct_at catalog (a : L.Atom.t) i =
  match Catalog.stats_of catalog a.L.Atom.pred with
  | Some stats when i < Array.length stats.Catalog.distinct_per_column ->
    max 1 stats.Catalog.distinct_per_column.(i)
  | Some _ | None -> 10

let est_conj catalog (c : A.conj) =
  (* Cross product of per-atom estimates, divided per shared variable by the
     largest distinct count among its columns, once per extra occurrence. *)
  let product =
    List.fold_left (fun acc a -> acc *. float_of_int (est_atom catalog a)) 1.0 c.A.atoms
  in
  let occurrences = Hashtbl.create 16 in
  List.iter
    (fun (a : L.Atom.t) ->
      List.iteri
        (fun i t ->
          match t with
          | L.Term.Var x ->
            let d = distinct_at catalog a i in
            let prev = Option.value ~default:[] (Hashtbl.find_opt occurrences x) in
            Hashtbl.replace occurrences x (d :: prev)
          | L.Term.Const _ -> ())
        a.L.Atom.args)
    c.A.atoms;
  let divided =
    Hashtbl.fold
      (fun _ ds acc ->
        match ds with
        | [] | [ _ ] -> acc
        | ds ->
          let dmax = float_of_int (List.fold_left max 1 ds) in
          acc /. (dmax ** float_of_int (List.length ds - 1)))
      occurrences product
  in
  (* Range comparisons filter further. *)
  let with_ranges =
    divided *. (Catalog.range_selectivity ** float_of_int (List.length c.A.cmps))
  in
  max 1 (int_of_float (ceil with_ranges))

let scan_volume catalog (c : A.conj) =
  List.fold_left
    (fun acc (a : L.Atom.t) ->
      acc
      + match Catalog.stats_of catalog a.L.Atom.pred with
        | Some s -> s.Catalog.cardinality
        | None -> unknown_card)
    0 c.A.atoms

let ship_cost model catalog (c : A.conj) =
  CM.remote_query_cost model ~scanned:(scan_volume catalog c) ~returned:(est_conj catalog c)

let per_atom_cost model catalog (c : A.conj) =
  let fetches =
    List.fold_left
      (fun acc (a : L.Atom.t) ->
        let scanned =
          match Catalog.stats_of catalog a.L.Atom.pred with
          | Some s -> s.Catalog.cardinality
          | None -> unknown_card
        in
        acc +. CM.remote_query_cost model ~scanned ~returned:(est_atom catalog a))
      0.0 c.A.atoms
  in
  let local_join =
    model.CM.cache_tuple_ms
    *. float_of_int (List.fold_left (fun acc a -> acc + est_atom catalog a) 0 c.A.atoms)
  in
  fetches +. local_join
