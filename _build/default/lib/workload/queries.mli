(** Query batches with locality: repeated and overlapping AI queries are
    what makes caching (and especially subsumption-based reuse) pay off. *)

val constants_with_locality :
  Prng.t -> pool:string list -> skew:float -> n:int -> string list
(** [n] constants drawn Zipf-distributed from the pool: higher [skew] means
    more repetition of the popular constants. *)

val ancestor_batch :
  ?seed:int -> persons:int -> n:int -> skew:float -> unit -> Braid_logic.Atom.t list
(** Queries [ancestor(p_i, Y)] with Zipf-chosen [p_i] (low-numbered people,
    who actually have descendants). *)

val grandparent_batch :
  ?seed:int -> persons:int -> n:int -> skew:float -> unit -> Braid_logic.Atom.t list

val bom_batch :
  ?seed:int -> parts:int -> n:int -> skew:float -> unit -> Braid_logic.Atom.t list
(** Queries [uses(part_i, Y)]. *)

val university_batch :
  ?seed:int -> students:int -> n:int -> skew:float -> unit -> Braid_logic.Atom.t list
(** Queries [eligible(s_i, C)]. *)

val telecom_batch :
  ?seed:int -> orders:int -> offices:int -> n:int -> unit -> Braid_logic.Atom.t list
(** A provisioning session: mostly ground [provisionable(ord_i)] checks
    with interleaved [servable(co_j, S)] lookups and occasional
    [reachable_backbone(CO)] sweeps — the mixed, repetitive load of an
    expert-system front end. *)

val example1_batch :
  ?seed:int -> n:int -> unit -> Braid_logic.Atom.t list
(** Repeated [k1(X, Y)] queries (the paper's running example). *)
