module R = Braid_relalg
module V = Braid_relalg.Value

let rel name attrs rows =
  R.Relation.of_tuples ~name (R.Schema.make attrs) (List.map Array.of_list rows)

let family ?(seed = 42) ~persons ~fanout () =
  let prng = Prng.create seed in
  let name i = V.Str (Printf.sprintf "p%d" i) in
  (* Person i>0 gets a parent among the earlier people, biased to recent
     ones so the forest is deep as well as wide. *)
  let parent_rows = ref [] in
  for i = 1 to persons - 1 do
    let lo = max 0 ((i - 1) / fanout * fanout / 2) in
    let parent = lo + Prng.int prng (max 1 (i - lo)) in
    parent_rows := [ name (min parent (i - 1)); name i ] :: !parent_rows
  done;
  let person_rows =
    List.init persons (fun i -> [ name i; V.Int (18 + Prng.int prng 60) ])
  in
  [
    rel "parent" [ ("parent", V.Tstr); ("child", V.Tstr) ] (List.rev !parent_rows);
    rel "person" [ ("name", V.Tstr); ("age", V.Tint) ] person_rows;
  ]

let bill_of_materials ?(seed = 43) ~parts ~max_children () =
  let prng = Prng.create seed in
  let pid i = V.Str (Printf.sprintf "part%d" i) in
  let subpart_rows = ref [] in
  for i = 0 to parts - 1 do
    let n_children = 1 + Prng.int prng max_children in
    for _ = 1 to n_children do
      if i < parts - 1 then begin
        let child = i + 1 + Prng.int prng (max 1 (parts - i - 1)) in
        if child < parts then
          subpart_rows := [ pid i; pid child; V.Int (1 + Prng.int prng 9) ] :: !subpart_rows
      end
    done
  done;
  let part_rows = List.init parts (fun i -> [ pid i; V.Int (1 + Prng.int prng 500) ]) in
  [
    rel "subpart"
      [ ("assembly", V.Tstr); ("component", V.Tstr); ("qty", V.Tint) ]
      (List.rev !subpart_rows);
    rel "part" [ ("id", V.Tstr); ("price", V.Tint) ] part_rows;
  ]

let university ?(seed = 44) ~students ~courses ~enrollments () =
  let prng = Prng.create seed in
  let sid i = V.Str (Printf.sprintf "s%d" i) in
  let cid i = V.Str (Printf.sprintf "c%d" i) in
  let depts = [ "cs"; "math"; "bio"; "hist" ] in
  let student_rows =
    List.init students (fun i ->
        [ sid i; V.Str (Printf.sprintf "student_%d" i); V.Int (1 + Prng.int prng 4) ])
  in
  let course_rows =
    List.init courses (fun i ->
        [ cid i; V.Str (List.nth depts (Prng.int prng (List.length depts)));
          V.Int (100 + (100 * Prng.int prng 4)) ])
  in
  let seen = Hashtbl.create enrollments in
  let enrolled_rows = ref [] in
  let attempts = ref 0 in
  while List.length !enrolled_rows < enrollments && !attempts < enrollments * 10 do
    incr attempts;
    let s = Prng.int prng students and c = Prng.int prng courses in
    if not (Hashtbl.mem seen (s, c)) then begin
      Hashtbl.add seen (s, c) ();
      enrolled_rows := [ sid s; cid c; V.Int (Prng.int prng 5) ] :: !enrolled_rows
    end
  done;
  (* prereq: each non-introductory course requires 1-2 earlier courses *)
  let prereq_rows = ref [] in
  for i = 1 to courses - 1 do
    let n = 1 + Prng.int prng 2 in
    for _ = 1 to n do
      let req = Prng.int prng i in
      !prereq_rows
      |> List.exists (fun row -> row = [ cid i; cid req ])
      |> fun dup -> if not dup then prereq_rows := [ cid i; cid req ] :: !prereq_rows
    done
  done;
  [
    rel "student" [ ("id", V.Tstr); ("name", V.Tstr); ("year", V.Tint) ] student_rows;
    rel "course" [ ("id", V.Tstr); ("dept", V.Tstr); ("level", V.Tint) ] course_rows;
    rel "enrolled"
      [ ("student", V.Tstr); ("course", V.Tstr); ("grade", V.Tint) ]
      (List.rev !enrolled_rows);
    rel "prereq" [ ("course", V.Tstr); ("required", V.Tstr) ] (List.rev !prereq_rows);
  ]

let supplier_parts ?(seed = 45) ~suppliers ~parts ~shipments () =
  let prng = Prng.create seed in
  let sid i = V.Str (Printf.sprintf "sup%d" i) in
  let pid i = V.Str (Printf.sprintf "prt%d" i) in
  let cities = [ "athens"; "paris"; "london"; "oslo"; "rome" ] in
  let colors = [ "red"; "green"; "blue"; "black" ] in
  let supplier_rows =
    List.init suppliers (fun i -> [ sid i; V.Str (List.nth cities (Prng.int prng 5)) ])
  in
  let part_rows =
    List.init parts (fun i ->
        [ pid i; V.Str (List.nth colors (Prng.int prng 4)); V.Int (1 + Prng.int prng 99) ])
  in
  let supplies_rows =
    List.init shipments (fun _ ->
        [ sid (Prng.int prng suppliers); pid (Prng.int prng parts); V.Int (1 + Prng.int prng 400) ])
  in
  [
    rel "supplier" [ ("id", V.Tstr); ("city", V.Tstr) ] supplier_rows;
    rel "part" [ ("id", V.Tstr); ("color", V.Tstr); ("weight", V.Tint) ] part_rows;
    rel "supplies" [ ("supplier", V.Tstr); ("part", V.Tstr); ("qty", V.Tint) ] supplies_rows;
  ]

let telecom ?(seed = 47) ~offices ~customers ~orders () =
  let prng = Prng.create seed in
  let co i = V.Str (Printf.sprintf "co%d" i) in
  let cust i = V.Str (Printf.sprintf "cust%d" i) in
  let regions = [ "north"; "south"; "east"; "west" ] in
  let kinds = [ "dslam"; "olt"; "switch" ] in
  let services = [ "pots"; "dsl"; "fiber" ] in
  let co_rows = List.init offices (fun i -> [ co i; V.Str (List.nth regions (i mod 4)) ]) in
  (* acyclic network: each office links to 1-2 later offices *)
  let span_rows = ref [] in
  for i = 0 to offices - 2 do
    let n = 1 + Prng.int prng 2 in
    for _ = 1 to n do
      let dst = i + 1 + Prng.int prng (max 1 (offices - i - 1)) in
      if dst < offices then
        span_rows := [ co i; co dst; V.Int (100 + (100 * Prng.int prng 8)) ] :: !span_rows
    done
  done;
  let equipment_rows =
    List.concat
      (List.init offices (fun i ->
           List.filter_map
             (fun kind ->
               if Prng.bool prng 0.6 then Some [ co i; V.Str kind; V.Int (Prng.int prng 20) ]
               else None)
             kinds))
  in
  let customer_rows =
    List.init customers (fun i ->
        [ cust i; co (Prng.int prng offices); V.Str (if Prng.bool prng 0.7 then "res" else "biz") ])
  in
  let order_rows =
    List.init orders (fun i ->
        [
          V.Str (Printf.sprintf "ord%d" i);
          cust (Prng.int prng customers);
          V.Str (List.nth services (Prng.int prng 3));
        ])
  in
  let service_rows =
    [
      [ V.Str "pots"; V.Str "switch"; V.Int 100 ];
      [ V.Str "dsl"; V.Str "dslam"; V.Int 200 ];
      [ V.Str "fiber"; V.Str "olt"; V.Int 400 ];
    ]
  in
  [
    rel "co" [ ("id", V.Tstr); ("region", V.Tstr) ] co_rows;
    rel "span" [ ("src", V.Tstr); ("dst", V.Tstr); ("capacity", V.Tint) ] (List.rev !span_rows);
    rel "equipment" [ ("co", V.Tstr); ("kind", V.Tstr); ("free_slots", V.Tint) ] equipment_rows;
    rel "customer" [ ("id", V.Tstr); ("co", V.Tstr); ("tier", V.Tstr) ] customer_rows;
    rel "order_req" [ ("id", V.Tstr); ("customer", V.Tstr); ("service", V.Tstr) ] order_rows;
    rel "service_def"
      [ ("service", V.Tstr); ("needs_kind", V.Tstr); ("min_capacity", V.Tint) ]
      service_rows;
  ]

let paper_example ?(seed = 46) ~size () =
  let prng = Prng.create seed in
  let sym prefix i = V.Str (Printf.sprintf "%s%d" prefix i) in
  let c k = V.Str (Printf.sprintf "c%d" k) in
  (* b1(a, b): some rows anchored at c1 so that b1(c1, Y) succeeds; also
     rows whose first column comes from b3's third column (for R3). *)
  let b1_rows =
    List.init size (fun i ->
        if i mod 3 = 0 then [ c 1; sym "y" (i / 3) ]
        else [ sym "z" (Prng.int prng size); sym "y" (Prng.int prng size) ])
  in
  (* b2(x, z) *)
  let b2_rows =
    List.init size (fun i -> [ sym "x" (i mod (max 1 (size / 2))); sym "z" (Prng.int prng size) ])
  in
  (* b3(z, c, y): second column frequently c2 (for R2) or c3 (for R3). *)
  let b3_rows =
    List.init (2 * size) (fun i ->
        let tag = if i mod 2 = 0 then c 2 else c 3 in
        [ sym "z" (Prng.int prng size); tag; sym "y" (Prng.int prng size) ])
  in
  [
    rel "b1" [ ("a", V.Tstr); ("b", V.Tstr) ] b1_rows;
    rel "b2" [ ("a", V.Tstr); ("b", V.Tstr) ] b2_rows;
    rel "b3" [ ("a", V.Tstr); ("b", V.Tstr); ("c", V.Tstr) ] b3_rows;
  ]
