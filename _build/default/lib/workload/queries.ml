module L = Braid_logic
module T = L.Term

let constants_with_locality prng ~pool ~skew ~n =
  let arr = Array.of_list pool in
  List.init n (fun _ -> arr.(Prng.zipf prng ~n:(Array.length arr) ~skew))

let batch ?(seed = 7) ~pool ~skew ~n mk =
  let prng = Prng.create seed in
  List.map mk (constants_with_locality prng ~pool ~skew ~n)

let ancestor_batch ?seed ~persons ~n ~skew () =
  (* Only the first third of people are likely to have descendants. *)
  let pool = List.init (max 1 (persons / 3)) (fun i -> Printf.sprintf "p%d" i) in
  batch ?seed ~pool ~skew ~n (fun c ->
      L.Atom.make "ancestor" [ T.Const (Braid_relalg.Value.Str c); T.Var "Y" ])

let grandparent_batch ?seed ~persons ~n ~skew () =
  let pool = List.init (max 1 (persons / 3)) (fun i -> Printf.sprintf "p%d" i) in
  batch ?seed ~pool ~skew ~n (fun c ->
      L.Atom.make "grandparent" [ T.Const (Braid_relalg.Value.Str c); T.Var "Y" ])

let bom_batch ?seed ~parts ~n ~skew () =
  let pool = List.init (max 1 (parts / 3)) (fun i -> Printf.sprintf "part%d" i) in
  batch ?seed ~pool ~skew ~n (fun c ->
      L.Atom.make "uses" [ T.Const (Braid_relalg.Value.Str c); T.Var "Y" ])

let university_batch ?seed ~students ~n ~skew () =
  let pool = List.init (max 1 students) (fun i -> Printf.sprintf "s%d" i) in
  batch ?seed ~pool ~skew ~n (fun c ->
      L.Atom.make "eligible" [ T.Const (Braid_relalg.Value.Str c); T.Var "C" ])

let telecom_batch ?(seed = 9) ~orders ~offices ~n () =
  let prng = Prng.create seed in
  List.init n (fun _ ->
      match Prng.int prng 10 with
      | 0 | 1 ->
        let j = Prng.zipf prng ~n:offices ~skew:1.0 in
        L.Atom.make "servable"
          [ T.Const (Braid_relalg.Value.Str (Printf.sprintf "co%d" j)); T.Var "S" ]
      | 2 -> L.Atom.make "reachable_backbone" [ T.Var "CO" ]
      | _ ->
        let k = Prng.zipf prng ~n:orders ~skew:0.8 in
        L.Atom.make "provisionable"
          [ T.Const (Braid_relalg.Value.Str (Printf.sprintf "ord%d" k)) ])

let example1_batch ?seed ~n () =
  ignore seed;
  List.init n (fun _ -> L.Atom.make "k1" [ T.Var "X"; T.Var "Y" ])
