(** Knowledge bases (rule sets + SOAs) matching {!Datagen}'s databases. *)

val ancestor : unit -> Braid_logic.Kb.t
(** Over [parent]/[person]: [ancestor(X,Y)] (transitive closure),
    [grandparent(X,Y)], [adult_ancestor(X,Y)] (ancestor whose age >= 40). *)

val same_generation : unit -> Braid_logic.Kb.t
(** The classic recursive same-generation program over [parent]. *)

val bill_of_materials : unit -> Braid_logic.Kb.t
(** Over [subpart]/[part]: [uses(X,Y)] (transitive), [pricey_component(X,Y,P)]
    (component of X priced above P is impossible to express with a variable
    threshold; P is a price produced for filtering by the caller),
    [needs_expensive(X)] (uses a component priced above 400). *)

val university : unit -> Braid_logic.Kb.t
(** Over the university schema: [completed(S,C)] (grade >= 2),
    [eligible(S,C)] (completed every direct prerequisite — approximated as
    at least one, with [missing_prereq] as the exact complement via
    negation at the CAQL level), [advanced_student(S)] and
    [dept_peer(S1,S2)]. *)

val telecom : unit -> Braid_logic.Kb.t
(** Over {!Datagen.telecom}: [connected(A,B)] (span closure),
    [fat_link(A,B)] / [backbone(A,B)] (capacity-filtered closure),
    [servable(CO, Service)] (equipment matches the service definition with
    free slots), [provisionable(Order)] and [reachable_backbone(CO)]. With
    an FD SOA on [customer] (id determines office and tier). *)

val example1 : unit -> Braid_logic.Kb.t
(** The paper's Example 1 (§4.2.2): rules R1–R3 over [b1], [b2], [b3]. *)

val example2 : unit -> Braid_logic.Kb.t
(** The paper's Example 2: R2/R3 guarded by IE-only predicates [k3], [k4]
    (defined by small fact rules), with a mutual-exclusion SOA on them. *)
