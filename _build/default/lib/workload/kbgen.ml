module L = Braid_logic
module T = L.Term
module RP = Braid_relalg.Row_pred

let atom p args = L.Atom.make p args
let rel p args = L.Literal.Rel (atom p args)
let v x = T.Var x
let s c = T.Const (Braid_relalg.Value.Str c)
let i n = T.Const (Braid_relalg.Value.Int n)
let cmp op a b = L.Literal.cmp op a b

let rule kb id head body = L.Kb.add_rule kb (L.Rule.make ~id head body)

let ancestor () =
  let kb = L.Kb.create () in
  L.Kb.declare_base kb "parent" ~arity:2;
  L.Kb.declare_base kb "person" ~arity:2;
  rule kb "A1" (atom "ancestor" [ v "X"; v "Y" ]) [ rel "parent" [ v "X"; v "Y" ] ];
  rule kb "A2"
    (atom "ancestor" [ v "X"; v "Y" ])
    [ rel "parent" [ v "X"; v "Z" ]; rel "ancestor" [ v "Z"; v "Y" ] ];
  rule kb "G1"
    (atom "grandparent" [ v "X"; v "Y" ])
    [ rel "parent" [ v "X"; v "Z" ]; rel "parent" [ v "Z"; v "Y" ] ];
  rule kb "AA1"
    (atom "adult_ancestor" [ v "X"; v "Y" ])
    [ rel "ancestor" [ v "X"; v "Y" ]; rel "person" [ v "X"; v "A" ]; cmp RP.Ge (v "A") (i 40) ];
  L.Kb.add_soa kb
    (L.Soa.Functional_dependency { pred = "parent"; determinant = [ 1 ]; dependent = [ 0 ] });
  L.Kb.add_soa kb (L.Soa.Recursive_structure { pred = "ancestor"; base_pred = "parent" });
  kb

let same_generation () =
  let kb = L.Kb.create () in
  L.Kb.declare_base kb "parent" ~arity:2;
  rule kb "SG1"
    (atom "sg" [ v "X"; v "Y" ])
    [ rel "parent" [ v "P"; v "X" ]; rel "parent" [ v "P"; v "Y" ] ];
  rule kb "SG2"
    (atom "sg" [ v "X"; v "Y" ])
    [
      rel "parent" [ v "PX"; v "X" ];
      rel "sg" [ v "PX"; v "PY" ];
      rel "parent" [ v "PY"; v "Y" ];
    ];
  L.Kb.add_soa kb (L.Soa.Recursive_structure { pred = "sg"; base_pred = "parent" });
  kb

let bill_of_materials () =
  let kb = L.Kb.create () in
  L.Kb.declare_base kb "subpart" ~arity:3;
  L.Kb.declare_base kb "part" ~arity:2;
  rule kb "U1" (atom "uses" [ v "X"; v "Y" ]) [ rel "subpart" [ v "X"; v "Y"; v "Q" ] ];
  rule kb "U2"
    (atom "uses" [ v "X"; v "Y" ])
    [ rel "subpart" [ v "X"; v "Z"; v "Q" ]; rel "uses" [ v "Z"; v "Y" ] ];
  rule kb "P1"
    (atom "pricey_component" [ v "X"; v "Y"; v "P" ])
    [ rel "uses" [ v "X"; v "Y" ]; rel "part" [ v "Y"; v "P" ] ];
  rule kb "NE1"
    (atom "needs_expensive" [ v "X" ])
    [ rel "uses" [ v "X"; v "Y" ]; rel "part" [ v "Y"; v "P" ]; cmp RP.Gt (v "P") (i 400) ];
  L.Kb.add_soa kb (L.Soa.Recursive_structure { pred = "uses"; base_pred = "subpart" });
  kb

let university () =
  let kb = L.Kb.create () in
  L.Kb.declare_base kb "student" ~arity:3;
  L.Kb.declare_base kb "course" ~arity:3;
  L.Kb.declare_base kb "enrolled" ~arity:3;
  L.Kb.declare_base kb "prereq" ~arity:2;
  rule kb "C1"
    (atom "completed" [ v "S"; v "C" ])
    [ rel "enrolled" [ v "S"; v "C"; v "G" ]; cmp RP.Ge (v "G") (i 2) ];
  rule kb "E1"
    (atom "eligible" [ v "S"; v "C" ])
    [ rel "prereq" [ v "C"; v "R" ]; rel "completed" [ v "S"; v "R" ] ];
  rule kb "AS1"
    (atom "advanced_student" [ v "S" ])
    [
      rel "student" [ v "S"; v "N"; v "Y" ];
      cmp RP.Ge (v "Y") (i 3);
      rel "enrolled" [ v "S"; v "C"; v "G" ];
      rel "course" [ v "C"; v "D"; v "L" ];
      cmp RP.Ge (v "L") (i 300);
    ];
  rule kb "DP1"
    (atom "dept_peer" [ v "S1"; v "S2" ])
    [
      rel "enrolled" [ v "S1"; v "C"; v "G1" ];
      rel "enrolled" [ v "S2"; v "C"; v "G2" ];
    ];
  kb

let telecom () =
  let kb = L.Kb.create () in
  L.Kb.declare_base kb "co" ~arity:2;
  L.Kb.declare_base kb "span" ~arity:3;
  L.Kb.declare_base kb "equipment" ~arity:3;
  L.Kb.declare_base kb "customer" ~arity:3;
  L.Kb.declare_base kb "order_req" ~arity:3;
  L.Kb.declare_base kb "service_def" ~arity:3;
  rule kb "C1" (atom "connected" [ v "A"; v "B" ]) [ rel "span" [ v "A"; v "B"; v "Cap" ] ];
  rule kb "C2"
    (atom "connected" [ v "A"; v "B" ])
    [ rel "span" [ v "A"; v "M"; v "Cap" ]; rel "connected" [ v "M"; v "B" ] ];
  rule kb "F1"
    (atom "fat_link" [ v "A"; v "B" ])
    [ rel "span" [ v "A"; v "B"; v "Cap" ]; cmp RP.Ge (v "Cap") (i 400) ];
  rule kb "B1" (atom "backbone" [ v "A"; v "B" ]) [ rel "fat_link" [ v "A"; v "B" ] ];
  rule kb "B2"
    (atom "backbone" [ v "A"; v "B" ])
    [ rel "fat_link" [ v "A"; v "M" ]; rel "backbone" [ v "M"; v "B" ] ];
  rule kb "S1"
    (atom "servable" [ v "CO"; v "Srv" ])
    [
      rel "service_def" [ v "Srv"; v "Kind"; v "MinCap" ];
      rel "equipment" [ v "CO"; v "Kind"; v "Free" ];
      cmp RP.Gt (v "Free") (i 0);
    ];
  rule kb "P1"
    (atom "provisionable" [ v "Ord" ])
    [
      rel "order_req" [ v "Ord"; v "Cust"; v "Srv" ];
      rel "customer" [ v "Cust"; v "CO"; v "Tier" ];
      rel "servable" [ v "CO"; v "Srv" ];
    ];
  rule kb "RB1"
    (atom "reachable_backbone" [ v "CO" ])
    [ rel "backbone" [ s "co0"; v "CO" ] ];
  L.Kb.add_soa kb
    (L.Soa.Functional_dependency { pred = "customer"; determinant = [ 0 ]; dependent = [ 1; 2 ] });
  L.Kb.add_soa kb (L.Soa.Recursive_structure { pred = "connected"; base_pred = "span" });
  L.Kb.add_soa kb (L.Soa.Recursive_structure { pred = "backbone"; base_pred = "span" });
  kb

let example1 () =
  let kb = L.Kb.create () in
  L.Kb.declare_base kb "b1" ~arity:2;
  L.Kb.declare_base kb "b2" ~arity:2;
  L.Kb.declare_base kb "b3" ~arity:3;
  rule kb "R1"
    (atom "k1" [ v "X"; v "Y" ])
    [ rel "b1" [ s "c1"; v "Y" ]; rel "k2" [ v "X"; v "Y" ] ];
  rule kb "R2"
    (atom "k2" [ v "X"; v "Y" ])
    [ rel "b2" [ v "X"; v "Z" ]; rel "b3" [ v "Z"; s "c2"; v "Y" ] ];
  rule kb "R3"
    (atom "k2" [ v "X"; v "Y" ])
    [ rel "b3" [ v "X"; s "c3"; v "Z" ]; rel "b1" [ v "Z"; v "Y" ] ];
  kb

let example2 () =
  let kb = L.Kb.create () in
  L.Kb.declare_base kb "b1" ~arity:2;
  L.Kb.declare_base kb "b2" ~arity:2;
  L.Kb.declare_base kb "b3" ~arity:3;
  rule kb "R1"
    (atom "k1" [ v "X"; v "Y" ])
    [ rel "b1" [ s "c1"; v "Y" ]; rel "k2" [ v "X"; v "Y" ] ];
  rule kb "R2"
    (atom "k2" [ v "X"; v "Y" ])
    [ rel "k3" [ v "X" ]; rel "b2" [ v "X"; v "Z" ]; rel "b3" [ v "Z"; s "c2"; v "Y" ] ];
  rule kb "R3"
    (atom "k2" [ v "X"; v "Y" ])
    [ rel "k4" [ v "X" ]; rel "b3" [ v "X"; s "c3"; v "Z" ]; rel "b1" [ v "Z"; v "Y" ] ];
  (* IE-only guard predicates: small fact sets. *)
  List.iteri (fun j c -> rule kb (Printf.sprintf "K3_%d" j) (atom "k3" [ c ]) []) [ s "x0"; s "x1" ];
  List.iteri (fun j c -> rule kb (Printf.sprintf "K4_%d" j) (atom "k4" [ c ]) []) [ s "z0"; s "z1" ];
  L.Kb.add_soa kb (L.Soa.Mutual_exclusion ("k3", "k4"));
  kb
