lib/workload/kbgen.mli: Braid_logic
