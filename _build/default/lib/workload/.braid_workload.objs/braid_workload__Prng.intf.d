lib/workload/prng.mli:
