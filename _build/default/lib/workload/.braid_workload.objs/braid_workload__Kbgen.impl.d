lib/workload/kbgen.ml: Braid_logic Braid_relalg List Printf
