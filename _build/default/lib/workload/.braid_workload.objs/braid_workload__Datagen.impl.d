lib/workload/datagen.ml: Array Braid_relalg Hashtbl List Printf Prng
