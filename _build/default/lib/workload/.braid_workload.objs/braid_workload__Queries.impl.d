lib/workload/queries.ml: Array Braid_logic Braid_relalg List Printf Prng
