lib/workload/datagen.mli: Braid_relalg
