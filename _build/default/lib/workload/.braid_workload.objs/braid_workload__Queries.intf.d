lib/workload/queries.mli: Braid_logic Prng
