(** Synthetic databases for examples, tests and experiments.

    Every generator is deterministic in its seed. Relation and attribute
    names are what the corresponding {!Kbgen} rule sets expect. *)

val family :
  ?seed:int -> persons:int -> fanout:int -> unit -> Braid_relalg.Relation.t list
(** A forest of people: [parent(parent, child)] (each non-root person has
    exactly one parent; a node has up to [fanout] children) and
    [person(name, age)]. Person names are [p0 .. p<n-1>]; [p0] and other
    low-numbered people are roots/ancestors. *)

val bill_of_materials :
  ?seed:int -> parts:int -> max_children:int -> unit -> Braid_relalg.Relation.t list
(** [subpart(assembly, component, qty)] (a DAG: component index > assembly
    index) and [part(id, price)]. *)

val university :
  ?seed:int -> students:int -> courses:int -> enrollments:int -> unit ->
  Braid_relalg.Relation.t list
(** [student(id, name, year)], [course(id, dept, level)],
    [enrolled(student, course, grade)] (grades 0–4) and
    [prereq(course, required)]. *)

val supplier_parts :
  ?seed:int -> suppliers:int -> parts:int -> shipments:int -> unit ->
  Braid_relalg.Relation.t list
(** [supplier(id, city)], [part(id, color, weight)],
    [supplies(supplier, part, qty)]. *)

val telecom :
  ?seed:int -> offices:int -> customers:int -> orders:int -> unit ->
  Braid_relalg.Relation.t list
(** A service-provisioning database (the Bellcore setting the paper grew
    out of): [co(id, region)], [span(src, dst, capacity)] (an acyclic
    inter-office network), [equipment(co, kind, free_slots)],
    [customer(id, co, tier)], [order_req(id, customer, service)] and
    [service_def(service, needs_kind, min_capacity)]. *)

val paper_example :
  ?seed:int -> size:int -> unit -> Braid_relalg.Relation.t list
(** Base relations [b1(a,b)], [b2(a,b)], [b3(a,b,c)] populated so that the
    paper's Example 1/2 rules (see {!Kbgen.example1}) produce non-trivial
    answers: the constants [c1], [c2], [c3] appear in the expected
    positions. *)
