(** The Cache Management System, as a component (paper §3/§5).

    Wires the Query Planner/Optimizer, Advice Manager, Cache Manager and
    Remote DBMS Interface together and exposes the IE–CMS interface: a
    session begins with a set of advice and is followed by a sequence of
    CAQL queries whose results are returned as streams.

    "The CMS may be used by systems other than the one described here"
    (§3) — nothing in this interface assumes the caller is the IE. *)

type t

val create :
  ?config:Braid_planner.Qpo.config ->
  ?capacity_bytes:int ->
  Braid_remote.Server.t ->
  t
(** [config] defaults to {!Braid_planner.Qpo.braid_config};
    [capacity_bytes] defaults to 8 MiB of cache. *)

val qpo : t -> Braid_planner.Qpo.t
val cache : t -> Braid_cache.Cache_manager.t
val server : t -> Braid_remote.Server.t

val begin_session : t -> Braid_advice.Ast.t -> unit
(** Submit the session's advice (view specifications + path expression). *)

val query :
  t ->
  ?spec_id:string ->
  ?prefer_lazy:bool ->
  Braid_caql.Ast.conj ->
  Braid_planner.Qpo.answer
(** One CAQL query; the result is a stream (lazy when possible and
    requested). *)

val query_full :
  t -> Braid_caql.Ast.t -> Braid_relalg.Relation.t * Braid_planner.Plan.t
(** Full CAQL including union, difference and aggregation — operations the
    remote DBMS does not support and the CMS evaluates itself. *)

val query_text : t -> string -> Braid_relalg.Relation.t * Braid_planner.Plan.t
(** Parses concrete CAQL syntax (see {!Braid_caql.Parser}) and evaluates. *)

val invalidate_table : t -> string -> string list
(** Drops every cache element that depends on the named remote table;
    returns the dropped element ids. Call after the table changes. *)

val cache_summary : t -> Braid_cache.Cache_model.summary
val metrics : t -> Braid_planner.Qpo.metrics
val remote_stats : t -> Braid_remote.Server.stats
val reset_metrics : t -> unit
(** Resets planner and remote accounting; cache contents are kept. *)

val set_trace : t -> bool -> unit
val trace : t -> (Braid_caql.Ast.conj * Braid_planner.Plan.t) list
(** Session trace: every conjunctive query answered since tracing was
    enabled, with its executed plan — the observable record of the QPO's
    decisions (used for debugging and by the examples). *)
