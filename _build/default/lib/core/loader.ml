module L = Braid_logic
module R = Braid_relalg
module V = R.Value
module A = Braid_caql.Ast

let kb_of_rules_text text =
  let clauses = Braid_caql.Parser.parse_program text in
  let kb = L.Kb.create () in
  let counter = ref 0 in
  let add_conj name (c : A.conj) =
    incr counter;
    let body =
      List.map (fun a -> L.Literal.Rel a) c.A.atoms
      @ List.map (fun (op, a, b) -> L.Literal.Cmp (op, a, b)) c.A.cmps
    in
    L.Kb.add_rule kb
      (L.Rule.make ~id:(Printf.sprintf "R%d" !counter) (L.Atom.make name c.A.head) body)
  in
  let rec add name = function
    | A.Conj c -> add_conj name c
    | A.Union qs -> List.iter (add name) qs
    | A.Diff _ | A.Agg _ | A.Distinct _ | A.Division _ | A.Fixpoint _ ->
      invalid_arg "Loader: rules files cannot contain negation or aggregation"
  in
  List.iter (fun (name, q) -> add name q) clauses;
  kb

let kb_of_rules_file path =
  kb_of_rules_text (In_channel.with_open_text path In_channel.input_all)

let split_csv line = String.split_on_char ',' line |> List.map String.trim

let parse_value s =
  match int_of_string_opt s with
  | Some n -> V.Int n
  | None ->
    (match float_of_string_opt s with
     | Some f -> V.Float f
     | None ->
       (match s with
        | "true" -> V.Bool true
        | "false" -> V.Bool false
        | "" -> V.Null
        | _ -> V.Str s))

let relation_of_csv_text ~name text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> invalid_arg "Loader: empty CSV input"
  | header :: rows ->
    let attrs = split_csv header in
    let width = List.length attrs in
    let parsed =
      List.map
        (fun row ->
          let vals = List.map parse_value (split_csv row) in
          if List.length vals <> width then
            invalid_arg
              (Printf.sprintf "Loader: CSV row has %d fields, expected %d"
                 (List.length vals) width);
          vals)
        rows
    in
    let col_ty i =
      let vals = List.map (fun row -> List.nth row i) parsed in
      if List.for_all (function V.Int _ | V.Null -> true | _ -> false) vals then V.Tint
      else if List.for_all (function V.Int _ | V.Float _ | V.Null -> true | _ -> false) vals
      then V.Tfloat
      else if List.for_all (function V.Bool _ | V.Null -> true | _ -> false) vals then V.Tbool
      else V.Tstr
    in
    let schema = R.Schema.make (List.mapi (fun i a -> (a, col_ty i)) attrs) in
    (* In a string-typed column, re-read numeric-looking values as text so
       that "1" and 1 don't silently coexist. *)
    let coerce i v =
      match R.Schema.ty_at schema i, v with
      | V.Tstr, V.Int n -> V.Str (string_of_int n)
      | V.Tstr, V.Float f -> V.Str (string_of_float f)
      | V.Tstr, V.Bool b -> V.Str (string_of_bool b)
      | V.Tfloat, V.Int n -> V.Float (float_of_int n)
      | _, v -> v
    in
    R.Relation.of_tuples ~name schema
      (List.map (fun row -> Array.of_list (List.mapi coerce row)) parsed)

let relation_of_csv_file path =
  let name = Filename.remove_extension (Filename.basename path) in
  relation_of_csv_text ~name (In_channel.with_open_text path In_channel.input_all)

let parse_atomic_query text =
  match Braid_caql.Parser.parse_clause (String.trim text ^ " .") with
  | name, A.Conj c when c.A.atoms = [] && c.A.cmps = [] -> L.Atom.make name c.A.head
  | _ -> invalid_arg "Loader: the AI query must be atomic, e.g. \"ancestor(p0, Y)\""
  | exception Braid_caql.Parser.Error m ->
    invalid_arg ("Loader: cannot parse query: " ^ m)
