(** Loading knowledge bases and databases from files.

    Rules use CAQL clause syntax (see {!Braid_caql.Parser}); relations use
    CSV with a header row. This is what `braid solve` consumes, exposed as
    a library so applications can do the same. *)

val kb_of_rules_text : string -> Braid_logic.Kb.t
(** Each clause [head(...) :- body.] becomes a Horn rule (clauses sharing a
    head predicate are alternative rules); facts are bodyless ground
    clauses. Raises [Braid_caql.Parser.Error] on syntax errors and
    [Invalid_argument] if a clause uses negation or aggregation. Predicates
    that never appear as a head are left undeclared — {!System.build}
    declares them as base relations when the data is loaded. *)

val kb_of_rules_file : string -> Braid_logic.Kb.t

val relation_of_csv_text : name:string -> string -> Braid_relalg.Relation.t
(** First line: comma-separated attribute names. Values: int, float,
    [true]/[false], empty (null) or string; a column's type is the most
    specific one covering all its values. Raises [Invalid_argument] on
    empty input or ragged rows. *)

val relation_of_csv_file : string -> Braid_relalg.Relation.t
(** The relation is named after the file's basename without extension. *)

val parse_atomic_query : string -> Braid_logic.Atom.t
(** ["ancestor(p0, Y)"] — an atomic AI query (§3). Raises
    [Invalid_argument] when the text is not a single atom. *)
