(** The coupling disciplines BrAID is compared against (paper §1's survey
    and §2's discussion of earlier Prolog–DBMS efforts), as ready-made
    configurations for {!System.build}. *)

type named = {
  label : string;
  description : string;
  config : Braid_planner.Qpo.config;
}

val loose_coupling : named
(** KEE-Connection / EDUCE style: a thin interface, every database goal is
    one remote request, nothing is reused. *)

val bermuda : named
(** BERMUDA [IOAN88]: query results are cached but "the data is reused only
    if an exact match of a later query occurs". *)

val ceri : named
(** [CERI86]: caching of single-relation extensions inside the interface. *)

val braid_no_advice : named
(** BrAID's subsumption caching with the advice-driven features (prefetch,
    generalization, pinning, indexing) disabled — isolates subsumption. *)

val braid : named
(** The full system. *)

val all : named list
(** In the order above — weakest coupling first. *)
