lib/core/system.mli: Braid_cache Braid_ie Braid_logic Braid_planner Braid_relalg Braid_remote Braid_stream Cms Format
