lib/core/cms.ml: Braid_cache Braid_caql Braid_planner Braid_remote
