lib/core/system.ml: Braid_cache Braid_caql Braid_ie Braid_logic Braid_planner Braid_relalg Braid_remote Cms Format List String
