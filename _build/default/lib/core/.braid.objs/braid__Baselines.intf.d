lib/core/baselines.mli: Braid_planner
