lib/core/repl.mli: Braid_planner
