lib/core/baselines.ml: Braid_planner
