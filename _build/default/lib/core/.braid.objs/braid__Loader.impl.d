lib/core/loader.ml: Array Braid_caql Braid_logic Braid_relalg Filename In_channel List Printf String
