lib/core/cms.mli: Braid_advice Braid_cache Braid_caql Braid_planner Braid_relalg Braid_remote
