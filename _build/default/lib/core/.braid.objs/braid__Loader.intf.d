lib/core/loader.mli: Braid_logic Braid_relalg
