module Qpo = Braid_planner.Qpo

type named = {
  label : string;
  description : string;
  config : Qpo.config;
}

let loose_coupling =
  {
    label = "loose";
    description = "loose coupling: one remote request per database goal, no reuse";
    config = Qpo.loose_coupling_config;
  }

let bermuda =
  {
    label = "bermuda";
    description = "BERMUDA-style result caching: reuse on exact query match only";
    config = Qpo.bermuda_config;
  }

let ceri =
  {
    label = "ceri";
    description = "CERI86-style caching of single-relation extensions";
    config = Qpo.ceri_config;
  }

let braid_no_advice =
  {
    label = "braid-sub";
    description = "BrAID subsumption caching, advice-driven features off";
    config = Qpo.no_advice_config;
  }

let braid =
  {
    label = "braid";
    description = "full BrAID: subsumption + advice (prefetch, generalization, pinning, indexing)";
    config = Qpo.braid_config;
  }

let all = [ loose_coupling; bermuda; ceri; braid_no_advice; braid ]
