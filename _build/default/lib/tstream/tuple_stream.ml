module R = Braid_relalg

type t = {
  schema : R.Schema.t;
  spine : R.Tuple.t R.Vec.t; (* memoized prefix *)
  mutable pull : (unit -> R.Tuple.t option) option; (* None once exhausted *)
  mutable produced : int;
}

type cursor = { stream : t; mutable pos : int }

let from schema pull =
  { schema; spine = R.Vec.create (); pull = Some pull; produced = 0 }

let of_list schema tuples =
  let rest = ref tuples in
  from schema (fun () ->
      match !rest with
      | [] -> None
      | t :: tl ->
        rest := tl;
        Some t)

let of_relation r = of_list (R.Relation.schema r) (R.Relation.to_list r)
let empty schema = of_list schema []
let schema s = s.schema
let cursor s = { stream = s; pos = 0 }

(* Pump the producer until the spine holds at least [n] tuples or the
   producer is exhausted. *)
let rec fill s n =
  if R.Vec.length s.spine >= n then true
  else
    match s.pull with
    | None -> false
    | Some pull ->
      (match pull () with
       | Some t ->
         s.produced <- s.produced + 1;
         R.Vec.push s.spine t;
         fill s n
       | None ->
         s.pull <- None;
         false)

let next c =
  if fill c.stream (c.pos + 1) then begin
    let t = R.Vec.get c.stream.spine c.pos in
    c.pos <- c.pos + 1;
    Some t
  end
  else if c.pos < R.Vec.length c.stream.spine then begin
    let t = R.Vec.get c.stream.spine c.pos in
    c.pos <- c.pos + 1;
    Some t
  end
  else None

let produced s = s.produced
let exhausted s = s.pull = None

let to_relation ?name s =
  let out = R.Relation.create ?name s.schema in
  let c = cursor s in
  let rec loop () =
    match next c with
    | Some t ->
      R.Relation.add out t;
      loop ()
    | None -> ()
  in
  loop ();
  out

let to_list s = R.Relation.to_list (to_relation s)

let map schema f s =
  let c = cursor s in
  from schema (fun () -> Option.map f (next c))

let filter p s =
  let c = cursor s in
  let rec pull () =
    match next c with
    | None -> None
    | Some t -> if p t then Some t else pull ()
  in
  from s.schema pull

let take n s =
  let c = cursor s in
  let remaining = ref n in
  from s.schema (fun () ->
      if !remaining <= 0 then None
      else
        match next c with
        | None -> None
        | Some t ->
          decr remaining;
          Some t)

let append a b =
  if R.Schema.arity a.schema <> R.Schema.arity b.schema then
    invalid_arg "Tuple_stream.append: arity mismatch";
  let ca = cursor a and cb = cursor b in
  from a.schema (fun () -> match next ca with Some t -> Some t | None -> next cb)

let concat_map schema f s =
  let c = cursor s in
  let pending = ref [] in
  let rec pull () =
    match !pending with
    | t :: rest ->
      pending := rest;
      Some t
    | [] ->
      (match next c with
       | None -> None
       | Some t ->
         pending := f t;
         pull ())
  in
  from schema pull

module Tuple_tbl = Hashtbl.Make (struct
  type t = R.Tuple.t

  let equal = R.Tuple.equal
  let hash = R.Tuple.hash
end)

let distinct s =
  let c = cursor s in
  let seen = Tuple_tbl.create 64 in
  let rec pull () =
    match next c with
    | None -> None
    | Some t ->
      if Tuple_tbl.mem seen t then pull ()
      else begin
        Tuple_tbl.add seen t ();
        Some t
      end
  in
  from s.schema pull

let buffered n s =
  if n <= 0 then invalid_arg "Tuple_stream.buffered: block size must be positive";
  let c = cursor s in
  let buffer = Queue.create () in
  let pull () =
    if Queue.is_empty buffer then begin
      (* Fetch a whole block, as the RDI does when talking to the server. *)
      let rec fetch k =
        if k > 0 then
          match next c with
          | Some t ->
            Queue.add t buffer;
            fetch (k - 1)
          | None -> ()
      in
      fetch n
    end;
    Queue.take_opt buffer
  in
  from s.schema pull
