lib/tstream/tuple_stream.mli: Braid_relalg
