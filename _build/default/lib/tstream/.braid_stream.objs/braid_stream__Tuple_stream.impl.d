lib/tstream/tuple_stream.ml: Braid_relalg Hashtbl Option Queue
