(** Pull-based tuple streams (the paper's generators, §5.1 and §5.5).

    A stream produces one tuple on demand; this is the CMS's [lazy
    evaluation] representation and also the IE–CMS result-transfer channel
    ("the CMS returns the result for the query using a stream", §3).

    Streams are memoizing: tuples already pulled are retained in a spine so
    that a second cursor over the same stream re-reads them without
    recomputation. This matters for the IE's chronological backtracking,
    which re-enumerates earlier DB subgoals. *)

type t
type cursor

val from : Braid_relalg.Schema.t -> (unit -> Braid_relalg.Tuple.t option) -> t
(** [from schema pull] wraps a producer function; [pull] returning [None]
    marks exhaustion (it is not called again afterwards). *)

val of_relation : Braid_relalg.Relation.t -> t
val of_list : Braid_relalg.Schema.t -> Braid_relalg.Tuple.t list -> t
val empty : Braid_relalg.Schema.t -> t

val schema : t -> Braid_relalg.Schema.t

val cursor : t -> cursor
(** A fresh cursor positioned at the first tuple. Cursors over the same
    stream share the memoized spine and the underlying producer. *)

val next : cursor -> Braid_relalg.Tuple.t option

val produced : t -> int
(** How many tuples the underlying producer has been asked for so far —
    the "work actually performed" measure used by the lazy-evaluation
    experiments. *)

val exhausted : t -> bool
(** Whether the producer has reported end-of-stream. *)

val to_relation : ?name:string -> t -> Braid_relalg.Relation.t
(** Forces the stream (eager evaluation of a generator). *)

val to_list : t -> Braid_relalg.Tuple.t list

val map : Braid_relalg.Schema.t -> (Braid_relalg.Tuple.t -> Braid_relalg.Tuple.t) -> t -> t
val filter : (Braid_relalg.Tuple.t -> bool) -> t -> t
val take : int -> t -> t
val append : t -> t -> t
(** Schemas must have equal arity; the left schema is kept. *)

val concat_map : Braid_relalg.Schema.t -> (Braid_relalg.Tuple.t -> Braid_relalg.Tuple.t list) -> t -> t

val distinct : t -> t
(** Lazily deduplicates while preserving order. *)

val buffered : int -> t -> t
(** [buffered n s] models the RDI's buffering (§5.5): the producer is pumped
    in blocks of [n] tuples, so [produced s] advances in steps of up to [n]
    even when the consumer pulls one tuple at a time. *)
