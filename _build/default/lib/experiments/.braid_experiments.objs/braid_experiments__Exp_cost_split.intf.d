lib/experiments/exp_cost_split.mli: Runner Table
