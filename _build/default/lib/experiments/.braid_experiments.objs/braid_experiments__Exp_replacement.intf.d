lib/experiments/exp_replacement.mli: Table
