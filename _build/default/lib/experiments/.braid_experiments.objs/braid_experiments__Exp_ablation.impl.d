lib/experiments/exp_ablation.ml: Braid_planner Braid_workload List Printf Runner Table
