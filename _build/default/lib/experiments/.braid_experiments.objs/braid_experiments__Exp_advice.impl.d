lib/experiments/exp_advice.ml: Braid_logic Braid_planner Braid_workload List Runner Table
