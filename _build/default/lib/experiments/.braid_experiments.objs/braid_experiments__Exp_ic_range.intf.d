lib/experiments/exp_ic_range.mli: Table
