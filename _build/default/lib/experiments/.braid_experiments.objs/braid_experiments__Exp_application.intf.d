lib/experiments/exp_application.mli: Runner Table
