lib/experiments/exp_lazy.ml: Braid Braid_caql Braid_logic Braid_planner Braid_relalg Braid_remote Braid_stream Braid_workload List Table
