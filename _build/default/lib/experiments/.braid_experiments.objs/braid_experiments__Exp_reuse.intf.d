lib/experiments/exp_reuse.mli: Table
