lib/experiments/exp_coupling.mli: Runner Table
