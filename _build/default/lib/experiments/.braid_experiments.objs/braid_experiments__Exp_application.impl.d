lib/experiments/exp_application.ml: Braid Braid_workload List Printf Runner Table
