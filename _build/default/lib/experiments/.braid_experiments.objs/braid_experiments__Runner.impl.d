lib/experiments/runner.ml: Braid Braid_cache Braid_planner Braid_relalg Braid_remote List
