lib/experiments/exp_coupling.ml: Braid Braid_workload List Printf Runner Table
