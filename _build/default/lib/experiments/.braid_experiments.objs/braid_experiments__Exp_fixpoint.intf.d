lib/experiments/exp_fixpoint.mli: Table
