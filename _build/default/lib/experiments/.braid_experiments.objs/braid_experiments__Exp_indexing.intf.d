lib/experiments/exp_indexing.mli: Table
