lib/experiments/exp_cost_split.ml: Braid Braid_workload List Printf Runner Table
