lib/experiments/exp_lazy.mli: Table
