lib/experiments/exp_ie_pipeline.mli: Table
