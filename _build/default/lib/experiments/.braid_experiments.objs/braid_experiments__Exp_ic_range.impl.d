lib/experiments/exp_ic_range.ml: Braid_ie Braid_planner Braid_workload List Printf Runner Table
