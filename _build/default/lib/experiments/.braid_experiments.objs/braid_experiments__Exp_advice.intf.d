lib/experiments/exp_advice.mli: Table
