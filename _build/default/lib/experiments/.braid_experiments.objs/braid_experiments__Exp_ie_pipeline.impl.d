lib/experiments/exp_ie_pipeline.ml: Braid Braid_ie Braid_logic Braid_relalg Braid_remote List Printf Table
