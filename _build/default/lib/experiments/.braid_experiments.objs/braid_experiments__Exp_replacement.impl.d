lib/experiments/exp_replacement.ml: Braid Braid_advice Braid_cache Braid_caql Braid_logic Braid_planner Braid_relalg Braid_remote Braid_stream List Printf Table
