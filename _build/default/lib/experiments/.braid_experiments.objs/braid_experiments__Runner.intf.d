lib/experiments/runner.mli: Braid_ie Braid_logic Braid_planner Braid_relalg
