lib/experiments/exp_ablation.mli: Runner Table
