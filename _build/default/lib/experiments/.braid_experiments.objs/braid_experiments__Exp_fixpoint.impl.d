lib/experiments/exp_fixpoint.ml: Braid Braid_caql Braid_ie Braid_logic Braid_planner Braid_relalg Braid_remote Braid_workload List Printf Runner Table
