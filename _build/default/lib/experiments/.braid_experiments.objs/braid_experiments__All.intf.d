lib/experiments/all.mli: Table
