(** E7 — §5.1: lazy vs eager evaluation when only a prefix of the result is
    consumed.

    A join over fully cached data is evaluated as a generator (lazy) and as
    an extension (eager); the consumer takes k of the solutions. Lazy work
    is proportional to k; eager work is constant at the full result size
    ("only those tuples that are required by the AI system will be
    produced rather than eagerly computing the entire result relation"). *)

type row = {
  consumed : int;
  lazy_produced : int;  (** tuples the generator actually computed *)
  eager_produced : int;  (** tuples the extension evaluation computed *)
}

val run : ?shipments:int -> ?take_points:int list -> unit -> row list * Table.t
