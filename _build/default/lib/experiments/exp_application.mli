(** E12 (extension) — a whole-application benchmark: the Bellcore-flavoured
    provisioning workload (the setting BrAID was built for).

    A mixed expert-system session — ground provisionability checks,
    servability lookups, backbone-reachability sweeps over a recursive,
    comparison-filtered network — runs under every coupling discipline.
    This exercises the entire stack at once (recursion, comparisons, FD
    SOAs, advice, subsumption, lazy streams) and shows the end-to-end
    ordering: loose ≫ exact-match ≈ single-relation ≫ subsumption ≥ full
    BrAID. *)

val run :
  ?offices:int -> ?customers:int -> ?orders:int -> ?queries:int -> unit ->
  Runner.result list * Table.t
