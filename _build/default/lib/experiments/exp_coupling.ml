let run ?(persons = 120) ?(queries = 30) ?(skew = 1.1) () =
  let kb () = Braid_workload.Kbgen.ancestor () in
  let data () = Braid_workload.Datagen.family ~persons ~fanout:3 () in
  let batch = Braid_workload.Queries.ancestor_batch ~persons ~n:queries ~skew () in
  let results =
    List.map
      (fun (b : Braid.Baselines.named) ->
        Runner.run_batch ~label:b.Braid.Baselines.label ~config:b.Braid.Baselines.config ~kb
          ~data batch)
      Braid.Baselines.all
  in
  let rows =
    List.map
      (fun (r : Runner.result) ->
        [
          Table.Text r.Runner.label;
          Table.Int r.Runner.requests;
          Table.Int r.Runner.tuples_returned;
          Table.Float r.Runner.comm_ms;
          Table.Float r.Runner.total_ms;
          Table.Int r.Runner.solutions;
        ])
      results
  in
  let table =
    Table.make
      ~title:
        (Printf.sprintf
           "E1  coupling disciplines — ancestor workload (%d persons, %d queries, zipf %.1f)"
           persons queries skew)
      ~columns:[ "system"; "remote req"; "tuples moved"; "comm ms"; "total ms"; "solutions" ]
      ~notes:
        [
          "paper Figure 1 / §1: bridging strictly improves on loose coupling; \
           subsumption beats exact-match reuse";
        ]
      rows
  in
  (results, table)
