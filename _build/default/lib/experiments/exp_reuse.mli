(** E5 — Figure 5 / §5.3.2: subsumption-based reuse vs exact-match reuse.

    A CMS-level batch of overlapping PSJ queries over the supplier-parts
    database: full-relation scans, constant selections, range selections of
    increasing tightness, and joins. Exact-match caching reuses a result
    only on a repeated identical query; BrAID's subsumption also derives
    selections from broader cached views, tighter ranges from looser ones,
    and joins from per-relation elements. *)

type row = {
  label : string;
  queries : int;
  full_hits : int;
  partial_hits : int;
  requests : int;
  tuples_moved : int;
}

val run : ?queries:int -> ?seed:int -> unit -> row list * Table.t
