module L = Braid_logic
module T = L.Term
module Qpo = Braid_planner.Qpo

type row = {
  label : string;
  size : int;
  requests : int;
  tuples_moved : int;
  generalizations : int;
  prefetches : int;
  total_ms : float;
}

let configs =
  [ ("subsumption only", Qpo.no_advice_config); ("with advice", Qpo.braid_config) ]

let run ?(sizes = [ 10; 20; 40 ]) () =
  let query = L.Atom.make "k1" [ T.Var "X"; T.Var "Y" ] in
  let rows_data =
    List.concat_map
      (fun size ->
        List.map
          (fun (label, config) ->
            let r =
              Runner.run_batch ~label ~config
                ~kb:(fun () -> Braid_workload.Kbgen.example1 ())
                ~data:(fun () -> Braid_workload.Datagen.paper_example ~size ())
                [ query ]
            in
            {
              label;
              size;
              requests = r.Runner.requests;
              tuples_moved = r.Runner.tuples_returned;
              generalizations = r.Runner.generalizations;
              prefetches = r.Runner.prefetches;
              total_ms = r.Runner.total_ms;
            })
          configs)
      sizes
  in
  let rows =
    List.map
      (fun r ->
        [
          Table.Int r.size;
          Table.Text r.label;
          Table.Int r.requests;
          Table.Int r.tuples_moved;
          Table.Int r.generalizations;
          Table.Int r.prefetches;
          Table.Float r.total_ms;
        ])
      rows_data
  in
  let table =
    Table.make ~title:"E8  advice: generalization + prefetch — paper Example 1 (k1 query)"
      ~columns:
        [ "data size"; "configuration"; "remote req"; "tuples moved"; "generalized"; "prefetched"; "total ms" ]
      ~notes:
        [
          "paper §5.3.1: with advice the CMS evaluates a generalization once \
           instead of one remote request per constant";
        ]
      rows
  in
  (rows_data, table)
