let experiments =
  [
    ("e1", fun () -> snd (Exp_coupling.run ()));
    ("e2", fun () -> snd (Exp_ablation.run ()));
    ("e3", fun () -> snd (Exp_cost_split.run ()));
    ("e4", fun () -> snd (Exp_ie_pipeline.run ()));
    ("e5", fun () -> snd (Exp_reuse.run ()));
    ("e6", fun () -> snd (Exp_ic_range.run ()));
    ("e7", fun () -> snd (Exp_lazy.run ()));
    ("e8", fun () -> snd (Exp_advice.run ()));
    ("e9", fun () -> snd (Exp_replacement.run ()));
    ("e10", fun () -> snd (Exp_indexing.run ()));
    ("e11", fun () -> snd (Exp_fixpoint.run ()));
    ("e12", fun () -> snd (Exp_application.run ()));
  ]

let run_all () =
  List.iter
    (fun (_, run) ->
      Table.print (run ());
      print_newline ())
    experiments

let run_one id =
  match List.assoc_opt (String.lowercase_ascii id) experiments with
  | Some run ->
    Table.print (run ());
    true
  | None -> false
