(** E1 — Figure 1 / §1: integration approaches compared.

    Claim reproduced: bridging (BrAID) needs far fewer remote requests and
    less simulated time than loose coupling on a recursive workload with
    query locality; the intermediate caching disciplines (BERMUDA exact
    match, CERI86 single relations) fall in between. *)

val run :
  ?persons:int -> ?queries:int -> ?skew:float -> unit -> Runner.result list * Table.t
(** One row per coupling discipline, ordered weakest first. *)
