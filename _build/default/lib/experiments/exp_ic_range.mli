(** E6 — §2's central claim: "it is simply not the case that more fully
    compiled systems are always preferable".

    The same AI queries are solved at four points of the
    interpreted–compiled range (interpretive, conjunction compilation of 2
    and 4, fully compiled) under two demand patterns: only the first
    solution wanted, and all solutions wanted. The crossover: interpretive
    wins when few solutions are demanded (lazy, tuple-at-a-time); the
    compiled end amortizes requests when everything is needed — and wastes
    transfer when it is not. *)

type row = {
  strategy : string;
  demand : string;
  requests : int;
  tuples_moved : int;
  total_ms : float;
}

val run : ?persons:int -> ?queries:int -> unit -> row list * Table.t
