module L = Braid_logic
module T = L.Term
module V = Braid_relalg.Value
module A = Braid_caql.Ast
module RP = Braid_relalg.Row_pred
module Qpo = Braid_planner.Qpo
module TS = Braid_stream.Tuple_stream

type row = {
  label : string;
  queries : int;
  full_hits : int;
  partial_hits : int;
  requests : int;
  tuples_moved : int;
}

let v x = T.Var x
let s x = T.Const (V.Str x)
let i n = T.Const (V.Int n)
let atom p args = L.Atom.make p args

(* Query templates over supplier-parts; the mix is chosen so that later
   queries overlap earlier ones without repeating them exactly. *)
let make_batch ~n ~seed =
  let prng = Braid_workload.Prng.create seed in
  List.init n (fun k ->
      match Braid_workload.Prng.int prng 5 with
      | 0 ->
        (* full scan (broad; everything later is derivable from it) *)
        A.conj [ v "S"; v "P"; v "Q" ] [ atom "supplies" [ v "S"; v "P"; v "Q" ] ]
      | 1 ->
        (* constant selection on supplier *)
        let sup = Printf.sprintf "sup%d" (Braid_workload.Prng.zipf prng ~n:12 ~skew:1.0) in
        A.conj [ v "P"; v "Q" ] [ atom "supplies" [ s sup; v "P"; v "Q" ] ]
      | 2 ->
        (* range of increasing tightness: later thresholds imply earlier *)
        let t = 100 + (50 * Braid_workload.Prng.int prng 6) in
        A.conj
          ~cmps:[ (RP.Gt, L.Literal.Term (v "Q"), L.Literal.Term (i t)) ]
          [ v "S"; v "P"; v "Q" ]
          [ atom "supplies" [ v "S"; v "P"; v "Q" ] ]
      | 3 ->
        (* join with part *)
        A.conj [ v "S"; v "P"; v "C" ]
          [ atom "supplies" [ v "S"; v "P"; v "Q" ]; atom "part" [ v "P"; v "C"; v "W" ] ]
      | _ ->
        (* join restricted to one color *)
        let color = List.nth [ "red"; "green"; "blue"; "black" ] (k mod 4) in
        A.conj [ v "S"; v "P" ]
          [ atom "supplies" [ v "S"; v "P"; v "Q" ]; atom "part" [ v "P"; s color; v "W" ] ])

let systems =
  [
    ("bermuda (exact)", Qpo.bermuda_config);
    ("ceri (single rel)", Qpo.ceri_config);
    ("braid (subsumption)", Qpo.no_advice_config);
  ]

let run ?(queries = 40) ?(seed = 11) () =
  let batch = make_batch ~n:queries ~seed in
  let rows_data =
    List.map
      (fun (label, config) ->
        let server = Braid_remote.Server.create () in
        List.iter
          (Braid_remote.Engine.load (Braid_remote.Server.engine server))
          (Braid_workload.Datagen.supplier_parts ~suppliers:12 ~parts:30 ~shipments:300 ());
        let cms = Braid.Cms.create ~config server in
        List.iter (fun q -> ignore (TS.to_relation (Braid.Cms.query cms q).Qpo.stream)) batch;
        let m = Braid.Cms.metrics cms in
        let st = Braid.Cms.remote_stats cms in
        {
          label;
          queries = m.Qpo.queries;
          full_hits = m.Qpo.full_hits;
          partial_hits = m.Qpo.partial_hits;
          requests = st.Braid_remote.Server.requests;
          tuples_moved = st.Braid_remote.Server.tuples_returned;
        })
      systems
  in
  let rows =
    List.map
      (fun r ->
        [
          Table.Text r.label;
          Table.Int r.queries;
          Table.Int r.full_hits;
          Table.Int r.partial_hits;
          Table.Int r.requests;
          Table.Int r.tuples_moved;
        ])
      rows_data
  in
  let table =
    Table.make
      ~title:
        (Printf.sprintf "E5  reuse discipline — overlapping PSJ batch (%d queries)" queries)
      ~columns:[ "system"; "queries"; "full hits"; "partial hits"; "remote req"; "tuples moved" ]
      ~notes:
        [
          "paper §5.3.2: subsumption derives selections/ranges/joins from cached \
           views; exact match reuses only identical queries";
        ]
      rows
  in
  (rows_data, table)
