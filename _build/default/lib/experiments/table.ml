type cell =
  | Text of string
  | Int of int
  | Float of float

type t = {
  title : string;
  columns : string list;
  rows : cell list list;
  notes : string list;
}

let make ~title ~columns ?(notes = []) rows = { title; columns; rows; notes }

let cell_to_string = function
  | Text s -> s
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%.1f" f

let pp ppf t =
  let rows = List.map (List.map cell_to_string) t.rows in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length col) rows)
      t.columns
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let line = String.concat "-+-" (List.map (fun w -> String.make w '-') widths) in
  Format.fprintf ppf "@[<v>== %s ==@," t.title;
  Format.fprintf ppf "%s@,"
    (String.concat " | " (List.map2 pad t.columns widths));
  Format.fprintf ppf "%s@," line;
  List.iter
    (fun row -> Format.fprintf ppf "%s@," (String.concat " | " (List.map2 pad row widths)))
    rows;
  List.iter (fun n -> Format.fprintf ppf "note: %s@," n) t.notes;
  Format.fprintf ppf "@]"

let print t = Format.printf "%a@." pp t
