(** E11 (extension) — §2's proposal: "we propose to use second-order
    templates along with specialized operators (e.g., a fixed point
    operator) to alleviate much of this mismatch".

    Three ways to compute an ancestor closure are compared: the
    interpretive IE (one CAQL query per subgoal), the fully compiled IE
    (fetch base relations, fixpoint on the workstation), and a single CAQL
    [Fixpoint] DAP evaluated by the CMS itself. The fixpoint template gets
    the compiled strategy's round-trip economy without IE-side machinery —
    the complex-DAP mismatch moves into the interface, as proposed. *)

type row = {
  approach : string;
  requests : int;
  tuples_moved : int;
  caql_queries : int;
  total_ms : float;
}

val run : ?persons:int -> unit -> row list * Table.t
