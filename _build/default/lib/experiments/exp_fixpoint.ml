module L = Braid_logic
module T = L.Term
module V = Braid_relalg.Value
module R = Braid_relalg
module A = Braid_caql.Ast
module Qpo = Braid_planner.Qpo
module Server = Braid_remote.Server

type row = {
  approach : string;
  requests : int;
  tuples_moved : int;
  caql_queries : int;
  total_ms : float;
}

let v x = T.Var x
let s x = T.Const (V.Str x)
let atom p args = L.Atom.make p args

let query = atom "ancestor" [ s "p0"; v "Y" ]

let run_ie ~label ~strategy ~persons =
  let r =
    Runner.run_batch ~label ~config:Qpo.no_advice_config ~strategy
      ~kb:(fun () -> Braid_workload.Kbgen.ancestor ())
      ~data:(fun () -> Braid_workload.Datagen.family ~persons ~fanout:3 ())
      [ query ]
  in
  {
    approach = label;
    requests = r.Runner.requests;
    tuples_moved = r.Runner.tuples_returned;
    caql_queries = r.Runner.caql_queries;
    total_ms = r.Runner.total_ms;
  }

let run_cms_fixpoint ~persons =
  let server = Server.create () in
  List.iter
    (Braid_remote.Engine.load (Server.engine server))
    (Braid_workload.Datagen.family ~persons ~fanout:3 ());
  let cms = Braid.Cms.create ~config:Qpo.no_advice_config server in
  let fix =
    A.Fixpoint
      {
        A.name = "tc";
        base = A.Conj (A.conj [ v "X"; v "Y" ] [ atom "parent" [ v "X"; v "Y" ] ]);
        step =
          A.Conj
            (A.conj [ v "X"; v "Z" ]
               [ atom "tc" [ v "X"; v "Y" ]; atom "parent" [ v "Y"; v "Z" ] ]);
      }
  in
  let closure, _plan = Braid.Cms.query_full cms fix in
  (* the AI query's selection on the closure *)
  let answers =
    R.Ops.select (R.Row_pred.Cmp (R.Row_pred.Eq, Col 0, Lit (V.Str "p0"))) closure
  in
  ignore answers;
  let st = Braid.Cms.remote_stats cms in
  let m = Braid.Cms.metrics cms in
  {
    approach = "CMS fixpoint DAP";
    requests = st.Server.requests;
    tuples_moved = st.Server.tuples_returned;
    caql_queries = m.Qpo.queries;
    total_ms = m.Qpo.elapsed_ms;
  }

let run ?(persons = 200) () =
  let rows_data =
    [
      run_ie ~label:"interpretive IE" ~strategy:Braid_ie.Strategy.Interpretive ~persons;
      run_ie ~label:"compiled IE + workstation fixpoint" ~strategy:Braid_ie.Strategy.Fully_compiled
        ~persons;
      run_cms_fixpoint ~persons;
    ]
  in
  let rows =
    List.map
      (fun r ->
        [
          Table.Text r.approach;
          Table.Int r.requests;
          Table.Int r.tuples_moved;
          Table.Int r.caql_queries;
          Table.Float r.total_ms;
        ])
      rows_data
  in
  let table =
    Table.make
      ~title:
        (Printf.sprintf "E11  recursion via the fixpoint operator — ancestor closure (%d persons)"
           persons)
      ~columns:[ "approach"; "remote req"; "tuples moved"; "CAQL queries"; "total ms" ]
      ~notes:
        [
          "paper §2 (extension): a fixed-point operator in the interface gives the \
           compiled strategy's round-trip economy without IE-side machinery";
        ]
      rows
  in
  (rows_data, table)
