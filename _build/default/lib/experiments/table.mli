(** Plain-text result tables shared by the benchmark harness and the
    experiment tests. *)

type cell =
  | Text of string
  | Int of int
  | Float of float  (** printed with one decimal *)

type t = {
  title : string;
  columns : string list;
  rows : cell list list;
  notes : string list;
}

val make : title:string -> columns:string list -> ?notes:string list -> cell list list -> t
val pp : Format.formatter -> t -> unit
val print : t -> unit
