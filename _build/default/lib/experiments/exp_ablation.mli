(** E2 — Figure 2 / §2: per-technique relief of the impedance mismatch.

    Each row disables one of BrAID's techniques (subsumption caching,
    advice, generalization, prefetching, indexing, lazy evaluation,
    parallel overlap) and reruns the same workload; the deltas attribute
    the end-to-end win to individual techniques. *)

val run :
  ?students:int -> ?queries:int -> unit -> (string * Runner.result) list * Table.t
(** The first row is the full system. *)
