module L = Braid_logic
module T = L.Term
module V = Braid_relalg.Value
module R = Braid_relalg
module A = Braid_caql.Ast
module Adv = Braid_advice.Ast
module Qpo = Braid_planner.Qpo
module TS = Braid_stream.Tuple_stream

type row = {
  label : string;
  queries : int;
  full_hits : int;
  requests : int;
  evictions : int;
}

let v x = T.Var x
let atom p args = L.Atom.make p args

let families = [ "ra"; "rb"; "rc" ]

let def_of name = A.conj [ v "X"; v "Y" ] [ atom name [ v "X"; v "Y" ] ]

let make_data () =
  List.map
    (fun name ->
      R.Relation.of_tuples ~name
        (R.Schema.make [ ("x", V.Tint); ("y", V.Tint) ])
        (List.init 150 (fun i -> [| V.Int i; V.Int (i * 3) |])))
    families

let advice =
  {
    Adv.specs =
      List.map
        (fun name ->
          Adv.spec ~id:("d_" ^ name) ~bindings:[ Adv.Producer; Adv.Producer ] (def_of name))
        families;
    path =
      Some
        (Adv.Seq
           ( List.map (fun name -> Adv.Pattern ("d_" ^ name, [ v "X"; v "Y" ])) families,
             { Adv.lo = 1; hi = Adv.Inf } ));
  }

let element_bytes =
  (* size of one cached family extension, for capacity dimensioning *)
  R.Relation.bytes_estimate
    (R.Relation.of_tuples
       (R.Schema.make [ ("x", V.Tint); ("y", V.Tint) ])
       (List.init 150 (fun i -> [| V.Int i; V.Int (i * 3) |])))

let run_one ~label ~with_advice ~rounds =
  let server = Braid_remote.Server.create () in
  List.iter (Braid_remote.Engine.load (Braid_remote.Server.engine server)) (make_data ());
  let config =
    if with_advice then
      (* pinning only; prefetch/generalization would mask the effect *)
      { Qpo.braid_config with Qpo.allow_prefetch = false; allow_generalization = false }
    else Qpo.no_advice_config
  in
  (* room for two of the three family extensions *)
  let cms = Braid.Cms.create ~config ~capacity_bytes:(2 * element_bytes + 256) server in
  if with_advice then Braid.Cms.begin_session cms advice;
  for _ = 1 to rounds do
    List.iter
      (fun name -> ignore (TS.to_relation (Braid.Cms.query cms (def_of name)).Braid_planner.Qpo.stream))
      families
  done;
  let m = Braid.Cms.metrics cms in
  let st = Braid.Cms.remote_stats cms in
  let cache_stats = Braid_cache.Cache_manager.stats (Braid.Cms.cache cms) in
  {
    label;
    queries = m.Qpo.queries;
    full_hits = m.Qpo.full_hits;
    requests = st.Braid_remote.Server.requests;
    evictions = cache_stats.Braid_cache.Cache_manager.evictions;
  }

let run ?(rounds = 12) () =
  let rows_data =
    [
      run_one ~label:"plain LRU" ~with_advice:false ~rounds;
      run_one ~label:"LRU + advice pinning" ~with_advice:true ~rounds;
    ]
  in
  let rows =
    List.map
      (fun r ->
        [
          Table.Text r.label;
          Table.Int r.queries;
          Table.Int r.full_hits;
          Table.Int r.requests;
          Table.Int r.evictions;
        ])
      rows_data
  in
  let table =
    Table.make
      ~title:
        (Printf.sprintf
           "E9  replacement under pressure — 3 view families, cache fits 2 (%d rounds)" rounds)
      ~columns:[ "policy"; "queries"; "full hits"; "remote req"; "evictions" ]
      ~notes:
        [
          "paper §5.4/§4.2.2: the tracker predicts the next query, so its element \
           is \"not the best candidate\" for replacement";
        ]
      rows
  in
  (rows_data, table)
