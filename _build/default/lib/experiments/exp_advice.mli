(** E8 — §4.2/§5.3.1: advice-driven prefetching and query generalization.

    The paper's running Example 1 (rules R1–R3): solving [k1(X,Y)?] makes
    the IE emit [d1(Y)] once and then [d2(X,c)] / [d3(X,c)] once per
    binding of Y. Without advice the CMS answers each instance separately;
    with the path expression it generalizes to the whole [d2]/[d3] families
    after the first instance (and prefetches the predicted-next family), so
    remote requests stop growing with |Y|. *)

type row = {
  label : string;
  size : int;  (** data scale: |Y| grows with it *)
  requests : int;
  tuples_moved : int;
  generalizations : int;
  prefetches : int;
  total_ms : float;
}

val run : ?sizes:int list -> unit -> row list * Table.t
