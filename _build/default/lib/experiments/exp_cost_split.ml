let run ?(parts = 80) ?(queries = 20) () =
  let kb () = Braid_workload.Kbgen.bill_of_materials () in
  let data () = Braid_workload.Datagen.bill_of_materials ~parts ~max_children:3 () in
  let batch = Braid_workload.Queries.bom_batch ~parts ~n:queries ~skew:1.0 () in
  let results =
    List.map
      (fun (b : Braid.Baselines.named) ->
        Runner.run_batch ~label:b.Braid.Baselines.label ~config:b.Braid.Baselines.config ~kb
          ~data batch)
      [ Braid.Baselines.loose_coupling; Braid.Baselines.bermuda; Braid.Baselines.braid ]
  in
  let rows =
    List.map
      (fun (r : Runner.result) ->
        let workstation = r.Runner.local_ms +. r.Runner.ie_ms in
        [
          Table.Text r.Runner.label;
          Table.Float r.Runner.comm_ms;
          Table.Float r.Runner.server_ms;
          Table.Float workstation;
          Table.Float r.Runner.total_ms;
        ])
      results
  in
  let table =
    Table.make
      ~title:
        (Printf.sprintf "E3  cost split — bill-of-materials (%d parts, %d queries)" parts
           queries)
      ~columns:[ "system"; "comm ms"; "server ms"; "workstation ms"; "total ms" ]
      ~notes:
        [
          "paper Figure 3 / §3: cost = communication + server demand + workstation \
           computation; bridging shifts cost onto the (cheap) workstation";
        ]
      rows
  in
  (results, table)
