type row = {
  strategy : string;
  demand : string;
  requests : int;
  tuples_moved : int;
  total_ms : float;
}

let strategies =
  [
    ("interpretive", Braid_ie.Strategy.Interpretive);
    ("conjunction-2", Braid_ie.Strategy.Conjunction_compiled 2);
    ("conjunction-4", Braid_ie.Strategy.Conjunction_compiled 4);
    ("fully compiled", Braid_ie.Strategy.Fully_compiled);
    ("adaptive", Braid_ie.Strategy.Adaptive);
  ]

let run ?(persons = 600) ?(queries = 5) () =
  let kb () = Braid_workload.Kbgen.ancestor () in
  let data () = Braid_workload.Datagen.family ~persons ~fanout:3 () in
  let batch = Braid_workload.Queries.ancestor_batch ~persons ~n:queries ~skew:0.5 () in
  let rows_data =
    List.concat_map
      (fun (name, strategy) ->
        List.map
          (fun (demand, first_only) ->
            let r =
              (* advice off: with generalization/prefetching the CMS flattens
                 the I-C range (few remote requests for every strategy); this
                 experiment isolates the strategies' intrinsic access
                 patterns. *)
              Runner.run_batch
                ~label:(name ^ "/" ^ demand)
                ~config:Braid_planner.Qpo.no_advice_config ~strategy ?first_only ~kb ~data
                batch
            in
            {
              strategy = name;
              demand;
              requests = r.Runner.requests;
              tuples_moved = r.Runner.tuples_returned;
              total_ms = r.Runner.total_ms;
            })
          [ ("first", Some 1); ("all", None) ])
      strategies
  in
  let rows =
    List.map
      (fun r ->
        [
          Table.Text r.strategy;
          Table.Text r.demand;
          Table.Int r.requests;
          Table.Int r.tuples_moved;
          Table.Float r.total_ms;
        ])
      rows_data
  in
  let table =
    Table.make
      ~title:
        (Printf.sprintf "E6  the I-C range — ancestor (%d persons, %d queries)" persons
           queries)
      ~columns:[ "strategy"; "demand"; "remote req"; "tuples moved"; "total ms" ]
      ~notes:
        [
          "paper §2: the optimum point on the I-C range differs from problem to \
           problem; compiled all-solutions wastes work when only one answer is wanted";
          "advice disabled here: with it, the CMS generalizes and the whole range \
           collapses to a handful of requests (see E8)";
        ]
      rows
  in
  (rows_data, table)
