module Qpo = Braid_planner.Qpo

let configs =
  [
    ("braid (all on)", Qpo.braid_config);
    ("- generalization", { Qpo.braid_config with Qpo.allow_generalization = false });
    ("- prefetch", { Qpo.braid_config with Qpo.allow_prefetch = false });
    ("- indexing", { Qpo.braid_config with Qpo.advice_indexing = false });
    ("- lazy eval", { Qpo.braid_config with Qpo.allow_lazy = false });
    ("- parallel", { Qpo.braid_config with Qpo.allow_parallel = false });
    ("- advice (subsumption only)", Qpo.no_advice_config);
    ("- subsumption (exact match)", Qpo.bermuda_config);
    ("- caching entirely", Qpo.loose_coupling_config);
  ]

let run ?(students = 60) ?(queries = 25) () =
  let kb () = Braid_workload.Kbgen.university () in
  let data () =
    Braid_workload.Datagen.university ~students ~courses:30 ~enrollments:(students * 4) ()
  in
  let batch = Braid_workload.Queries.university_batch ~students ~n:queries ~skew:1.0 () in
  let results =
    List.map (fun (label, config) -> (label, Runner.run_batch ~label ~config ~kb ~data batch)) configs
  in
  let rows =
    List.map
      (fun (label, (r : Runner.result)) ->
        [
          Table.Text label;
          Table.Int r.Runner.requests;
          Table.Int r.Runner.tuples_returned;
          Table.Float r.Runner.local_ms;
          Table.Float r.Runner.total_ms;
        ])
      results
  in
  let table =
    Table.make
      ~title:
        (Printf.sprintf "E2  technique ablation — university workload (%d students, %d queries)"
           students queries)
      ~columns:[ "configuration"; "remote req"; "tuples moved"; "local ms"; "total ms" ]
      ~notes:
        [
          "paper Figure 2 / §2: each technique addresses part of the mismatch";
          "on this workload prefetching subsumes generalization/indexing; their \
           isolated effects are E8 and E10";
        ]
      rows
  in
  (results, table)
