module L = Braid_logic
module T = L.Term
module A = Braid_caql.Ast
module Qpo = Braid_planner.Qpo
module TS = Braid_stream.Tuple_stream

type row = {
  consumed : int;
  lazy_produced : int;
  eager_produced : int;
}

let v x = T.Var x
let atom p args = L.Atom.make p args

let join_query =
  A.conj [ v "S"; v "P"; v "C" ]
    [ atom "supplies" [ v "S"; v "P"; v "Q" ]; atom "part" [ v "P"; v "C"; v "W" ] ]

let make_cms () =
  let server = Braid_remote.Server.create () in
  List.iter
    (Braid_remote.Engine.load (Braid_remote.Server.engine server))
    (Braid_workload.Datagen.supplier_parts ~suppliers:10 ~parts:25 ~shipments:400 ());
  let cms = Braid.Cms.create ~config:Qpo.no_advice_config server in
  (* Prime the cache with both base relations so the join is answerable
     locally (lazy evaluation requires all data in the cache, §5.1). *)
  List.iter
    (fun p ->
      let def =
        match p with
        | "supplies" -> A.conj [ v "S"; v "P"; v "Q" ] [ atom "supplies" [ v "S"; v "P"; v "Q" ] ]
        | _ -> A.conj [ v "P"; v "C"; v "W" ] [ atom "part" [ v "P"; v "C"; v "W" ] ]
      in
      ignore (TS.to_relation (Braid.Cms.query cms def).Qpo.stream))
    [ "supplies"; "part" ];
  cms

let run ?(shipments = 400) ?(take_points = [ 1; 5; 25; 100; 0 ]) () =
  ignore shipments;
  let rows_data =
    List.map
      (fun k ->
        (* lazy: pull k tuples (0 means all) *)
        let cms = make_cms () in
        let answer = Braid.Cms.query cms ~prefer_lazy:true join_query in
        let stream = answer.Qpo.stream in
        let cursor = TS.cursor stream in
        let rec pull n = if n <> 0 then match TS.next cursor with Some _ -> pull (n - 1) | None -> () in
        let eager_total =
          (* eager on a separate CMS: full evaluation *)
          let cms2 = make_cms () in
          let a2 = Braid.Cms.query cms2 join_query in
          Braid_relalg.Relation.cardinality (TS.to_relation a2.Qpo.stream)
        in
        pull (if k = 0 then eager_total else k);
        {
          consumed = (if k = 0 then eager_total else k);
          lazy_produced = TS.produced stream;
          eager_produced = eager_total;
        })
      take_points
  in
  let rows =
    List.map
      (fun r ->
        [ Table.Int r.consumed; Table.Int r.lazy_produced; Table.Int r.eager_produced ])
      rows_data
  in
  let table =
    Table.make ~title:"E7  lazy vs eager evaluation — join over cached data"
      ~columns:[ "solutions consumed"; "lazy: tuples computed"; "eager: tuples computed" ]
      ~notes:
        [
          "paper §5.1: a generator produces a single tuple on demand; eager \
           evaluation always computes the full extension";
        ]
      rows
  in
  (rows_data, table)
