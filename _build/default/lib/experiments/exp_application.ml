let run ?(offices = 30) ?(customers = 80) ?(orders = 60) ?(queries = 40) () =
  let kb () = Braid_workload.Kbgen.telecom () in
  let data () = Braid_workload.Datagen.telecom ~offices ~customers ~orders () in
  let batch = Braid_workload.Queries.telecom_batch ~orders ~offices ~n:queries () in
  let results =
    List.map
      (fun (b : Braid.Baselines.named) ->
        Runner.run_batch ~label:b.Braid.Baselines.label ~config:b.Braid.Baselines.config ~kb
          ~data batch)
      Braid.Baselines.all
  in
  let rows =
    List.map
      (fun (r : Runner.result) ->
        [
          Table.Text r.Runner.label;
          Table.Int r.Runner.requests;
          Table.Int r.Runner.tuples_returned;
          Table.Int (r.Runner.full_hits + r.Runner.exact_hits);
          Table.Float r.Runner.total_ms;
          Table.Int r.Runner.solutions;
        ])
      results
  in
  let table =
    Table.make
      ~title:
        (Printf.sprintf
           "E12  whole application — telecom provisioning (%d offices, %d orders, %d queries)"
           offices orders queries)
      ~columns:[ "system"; "remote req"; "tuples moved"; "cache hits"; "total ms"; "solutions" ]
      ~notes:
        [
          "extension: the full stack (recursion, comparisons, FD SOAs, advice, \
           subsumption, lazy streams) on one realistic expert-system session";
        ]
      rows
  in
  (results, table)
