(** E9 — §5.4: LRU modified by advice.

    A cyclic query sequence over three view families under a cache that
    holds only two of the three elements. Plain LRU always evicts the
    element that is needed next (the classic cyclic-thrash case); with the
    path expression the Advice Manager pins the predicted-next element, so
    part of the cycle hits. *)

type row = {
  label : string;
  queries : int;
  full_hits : int;
  requests : int;
  evictions : int;
}

val run : ?rounds:int -> unit -> row list * Table.t
