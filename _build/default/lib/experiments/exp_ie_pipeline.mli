(** E4 — Figure 4 / §4: the IE pipeline's eager constraining.

    Knowledge bases with increasing numbers of unsatisfiable rule branches
    (each requiring two mutually exclusive predicates on the same
    arguments) are solved with and without the mutual-exclusion SOA
    declared. With the SOA, the problem graph shaper culls the branches
    before any DBMS access; without it, every branch costs CAQL queries and
    remote requests at inference time. *)

type row = {
  branches : int;
  with_soa : bool;
  and_nodes_after : int;
  caql_queries : int;
  requests : int;
}

val run : ?sizes:int list -> unit -> row list * Table.t
