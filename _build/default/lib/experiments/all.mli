(** The complete experiment suite (see DESIGN.md §5 and EXPERIMENTS.md). *)

val experiments : (string * (unit -> Table.t)) list
(** [(id, run)] pairs, E1–E12, at full benchmark scale. *)

val run_all : unit -> unit
(** Runs every experiment and prints its table. *)

val run_one : string -> bool
(** Runs the experiment with the given id (e.g. ["e5"]); false if the id is
    unknown. *)
