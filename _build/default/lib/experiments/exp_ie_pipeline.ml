module L = Braid_logic
module T = L.Term
module V = Braid_relalg.Value
module R = Braid_relalg

type row = {
  branches : int;
  with_soa : bool;
  and_nodes_after : int;
  caql_queries : int;
  requests : int;
}

let atom p args = L.Atom.make p args
let v x = T.Var x

(* route(X,Y) <- road(X,Y)                       (the one real rule)
   route(X,Y) <- hot(X) & cold(X) & road(X,Y)    (n unsatisfiable branches) *)
let make_kb ~with_soa ~branches =
  let kb = L.Kb.create () in
  L.Kb.declare_base kb "road" ~arity:2;
  L.Kb.declare_base kb "hot" ~arity:1;
  L.Kb.declare_base kb "cold" ~arity:1;
  L.Kb.add_rule kb
    (L.Rule.make ~id:"R0" (atom "route" [ v "X"; v "Y" ]) [ L.Literal.rel (atom "road" [ v "X"; v "Y" ]) ]);
  for i = 1 to branches do
    L.Kb.add_rule kb
      (L.Rule.make ~id:(Printf.sprintf "R%d" i)
         (atom "route" [ v "X"; v "Y" ])
         [
           L.Literal.rel (atom "hot" [ v "X" ]);
           L.Literal.rel (atom "cold" [ v "X" ]);
           L.Literal.rel (atom "road" [ v "X"; v "Y" ]);
         ])
  done;
  if with_soa then L.Kb.add_soa kb (L.Soa.Mutual_exclusion ("hot", "cold"));
  kb

let make_data () =
  let rel name attrs rows = R.Relation.of_tuples ~name (R.Schema.make attrs) rows in
  let node i = V.Str (Printf.sprintf "n%d" i) in
  [
    rel "road"
      [ ("src", V.Tstr); ("dst", V.Tstr) ]
      (List.init 60 (fun i -> [| node i; node ((i + 7) mod 60) |]));
    rel "hot" [ ("x", V.Tstr) ] (List.init 30 (fun i -> [| node i |]));
    rel "cold" [ ("x", V.Tstr) ] (List.init 30 (fun i -> [| node (i + 30) |]));
  ]

let measure ~with_soa ~branches =
  let kb = make_kb ~with_soa ~branches in
  let sys = Braid.System.build ~kb ~data:(make_data ()) () in
  let query = atom "route" [ T.Const (V.Str "n3"); v "Y" ] in
  let _, report = Braid_ie.Engine.solve_all (Braid.System.engine sys) query in
  let m = Braid.System.metrics sys in
  {
    branches;
    with_soa;
    and_nodes_after = report.Braid_ie.Engine.graph_size.Braid_ie.Problem_graph.and_nodes;
    caql_queries =
      report.Braid_ie.Engine.counters.Braid_ie.Strategy.db_goal_queries;
    requests = m.Braid.System.remote.Braid_remote.Server.requests;
  }

let run ?(sizes = [ 0; 2; 4; 8 ]) () =
  let rows_data =
    List.concat_map
      (fun n -> [ measure ~with_soa:false ~branches:n; measure ~with_soa:true ~branches:n ])
      sizes
  in
  let rows =
    List.map
      (fun r ->
        [
          Table.Int r.branches;
          Table.Text (if r.with_soa then "yes" else "no");
          Table.Int r.and_nodes_after;
          Table.Int r.caql_queries;
          Table.Int r.requests;
        ])
      rows_data
  in
  let table =
    Table.make ~title:"E4  problem-graph shaping — mutual-exclusion SOA culling"
      ~columns:[ "dead branches"; "SOA"; "AND nodes"; "CAQL queries"; "remote req" ]
      ~notes:
        [
          "paper §4/§4.1: second-order knowledge culls the problem graph before \
           systematic querying of the DBMS";
        ]
      rows
  in
  (rows_data, table)
