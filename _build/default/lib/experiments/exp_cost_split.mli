(** E3 — Figure 3 / §3: where the cost goes.

    The paper defines the cost of a session as communication volume, server
    computation and workstation computation. This experiment reports the
    three components per coupling discipline on the bill-of-materials
    workload: the bridging architecture trades remote/communication cost
    for (cheaper) workstation work. *)

val run : ?parts:int -> ?queries:int -> unit -> Runner.result list * Table.t
