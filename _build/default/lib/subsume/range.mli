(** Interval reasoning over a single variable's comparison constraints.

    Used by the subsumption checker to decide whether the constraints a
    query places on a variable imply a cache element's constraint (e.g.
    [X > 7] implies [X > 5]), and by query generalization to replace
    constants "with a more general form such as variables or ranges of
    values" (§4.2). *)

type t

val unconstrained : t

val of_cmps : string -> Braid_caql.Ast.comparison list -> t
(** Constraints on the named variable collected from variable-vs-constant
    comparisons (either orientation). Comparisons not mentioning the
    variable, or mentioning two variables, are ignored. *)

val add : t -> Braid_relalg.Row_pred.cmp -> Braid_relalg.Value.t -> t
(** Conjoin [var op const]. *)

val implies : t -> Braid_relalg.Row_pred.cmp -> Braid_relalg.Value.t -> bool
(** Does every value satisfying the range satisfy [var op const]? *)

val is_empty : t -> bool
(** The range is unsatisfiable (e.g. [X > 5 & X < 3]). *)

val equal_to : t -> Braid_relalg.Value.t option
(** The single value the range forces, if any. *)
