module L = Braid_logic
module A = Braid_caql.Ast
module RP = Braid_relalg.Row_pred
module V = Braid_relalg.Value

type element = { id : string; def : A.conj }

type cover = {
  element_id : string;
  replacement : L.Atom.t;
  covered : int list;
}

(* Mapping from element variables to query terms. *)
module Theta = Map.Make (String)

let extend_atom theta (e : L.Atom.t) (q : L.Atom.t) =
  if not (String.equal e.L.Atom.pred q.L.Atom.pred && L.Atom.arity e = L.Atom.arity q) then
    None
  else
    let rec loop theta es qs =
      match es, qs with
      | [], [] -> Some theta
      | e_t :: es, q_t :: qs ->
        (match e_t, q_t with
         | L.Term.Const c, L.Term.Const c' ->
           if V.equal c c' then loop theta es qs else None
         | L.Term.Const _, L.Term.Var _ ->
           (* The element is more restricted than the query here. *)
           None
         | L.Term.Var x, t ->
           (match Theta.find_opt x theta with
            | Some t' -> if L.Term.equal t t' then loop theta es qs else None
            | None -> loop (Theta.add x t theta) es qs))
      | [], _ :: _ | _ :: _, [] -> None
    in
    loop theta e.L.Atom.args q.L.Atom.args

let uniq_sorted l = List.sort_uniq Stdlib.compare l

(* Element variables mapping to each query variable. *)
let sources_of theta v =
  Theta.fold
    (fun x t acc -> match t with L.Term.Var w when String.equal w v -> x :: acc | _ -> acc)
    theta []

let term_vars = function L.Term.Var x -> [ x ] | L.Term.Const _ -> []

let cmp_vars (_, a, b) = L.Literal.expr_vars a @ L.Literal.expr_vars b

(* Translate an element expression through theta. Element comparison
   variables are always bound because they must occur in element atoms
   (safety) and all element atoms are mapped. *)
let rec translate_expr theta = function
  | L.Literal.Term (L.Term.Const _) as e -> Some e
  | L.Literal.Term (L.Term.Var x) ->
    Option.map (fun t -> L.Literal.Term t) (Theta.find_opt x theta)
  | L.Literal.Add (a, b) -> bin theta (fun x y -> L.Literal.Add (x, y)) a b
  | L.Literal.Sub (a, b) -> bin theta (fun x y -> L.Literal.Sub (x, y)) a b
  | L.Literal.Mul (a, b) -> bin theta (fun x y -> L.Literal.Mul (x, y)) a b
  | L.Literal.Div (a, b) -> bin theta (fun x y -> L.Literal.Div (x, y)) a b

and bin theta mk a b =
  match translate_expr theta a, translate_expr theta b with
  | Some x, Some y -> Some (mk x y)
  | None, _ | _, None -> None

let flip : RP.cmp -> RP.cmp = function
  | RP.Eq -> RP.Eq
  | RP.Ne -> RP.Ne
  | RP.Lt -> RP.Gt
  | RP.Le -> RP.Ge
  | RP.Gt -> RP.Lt
  | RP.Ge -> RP.Le

(* Does the query's comparison set imply [op a b] (a translated element
   comparison)? Ground comparisons are evaluated; variable-vs-constant ones
   use interval reasoning over the query's constraints; variable-variable
   ones require syntactic presence (either orientation). *)
let query_implies_cmp (q : A.conj) (op, a, b) =
  match L.Literal.eval_cmp (L.Literal.Cmp (op, a, b)) with
  | Some ok -> ok
  | None ->
    (match a, b with
     | L.Literal.Term (L.Term.Var x), L.Literal.Term (L.Term.Const c) ->
       Range.implies (Range.of_cmps x q.A.cmps) op c
     | L.Literal.Term (L.Term.Const c), L.Literal.Term (L.Term.Var x) ->
       Range.implies (Range.of_cmps x q.A.cmps) (flip op) c
     | L.Literal.Term (L.Term.Var x), L.Literal.Term (L.Term.Var y) when String.equal x y ->
       (match op with RP.Eq | RP.Le | RP.Ge -> true | RP.Ne | RP.Lt | RP.Gt -> false)
     | _, _ ->
       List.exists
         (fun (op', a', b') ->
           (op = op' && a = a' && b = b') || (op = flip op' && a = b' && b = a'))
         q.A.cmps)

(* Validate a complete mapping and build the cover, or reject. *)
let build_cover element (q : A.conj) theta used =
  let covered = uniq_sorted used in
  let e_head_vars = List.concat_map term_vars element.def.A.head in
  let stored x = List.mem x e_head_vars in
  (* (a) compensating selections on constants need the column stored *)
  let const_sel_ok =
    Theta.for_all (fun x t -> match t with L.Term.Const _ -> stored x | L.Term.Var _ -> true) theta
  in
  (* (b) equating several element columns needs them all stored *)
  let q_image_vars =
    uniq_sorted
      (Theta.fold
         (fun _ t acc -> match t with L.Term.Var v -> v :: acc | L.Term.Const _ -> acc)
         theta [])
  in
  let multi_ok =
    List.for_all
      (fun v ->
        match sources_of theta v with
        | [] | [ _ ] -> true
        | xs -> List.for_all stored xs)
      q_image_vars
  in
  (* (c) query variables needed outside the covered part must be exposed *)
  let uncovered_atoms =
    List.filteri (fun i _ -> not (List.mem i covered)) q.A.atoms
  in
  let needed =
    uniq_sorted
      (List.concat_map term_vars q.A.head
      @ List.concat_map L.Atom.vars uncovered_atoms
      @ List.concat_map cmp_vars q.A.cmps)
  in
  let exposed_ok =
    List.for_all
      (fun v ->
        (not (List.mem v needed))
        || List.exists stored (sources_of theta v))
      q_image_vars
  in
  (* (d) the element's own comparisons must be implied by the query *)
  let cmps_ok =
    List.for_all
      (fun (op, a, b) ->
        match translate_expr theta a, translate_expr theta b with
        | Some a', Some b' -> query_implies_cmp q (op, a', b')
        | None, _ | _, None -> false)
      element.def.A.cmps
  in
  if const_sel_ok && multi_ok && exposed_ok && cmps_ok then
    let args =
      List.map
        (function
          | L.Term.Const _ as c -> c
          | L.Term.Var x ->
            (match Theta.find_opt x theta with
             | Some t -> t
             | None ->
               (* A stored column whose variable occurs in no element atom
                  would make the element unsafe; treat as unusable. *)
               raise Exit))
        element.def.A.head
    in
    Some { element_id = element.id; replacement = L.Atom.make element.id args; covered }
  else None

let covers element (q : A.conj) =
  let e_atoms = Array.of_list element.def.A.atoms in
  let q_atoms = Array.of_list q.A.atoms in
  let ne = Array.length e_atoms and nq = Array.length q_atoms in
  if ne = 0 || nq = 0 then []
  else begin
    let results = ref [] in
    let seen = Hashtbl.create 8 in
    let rec assign i theta used =
      if i = ne then begin
        match (try build_cover element q theta used with Exit -> None) with
        | Some cover ->
          let key =
            (cover.covered, L.Atom.to_string cover.replacement)
          in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            results := cover :: !results
          end
        | None -> ()
      end
      else
        for j = 0 to nq - 1 do
          match extend_atom theta e_atoms.(i) q_atoms.(j) with
          | Some theta' -> assign (i + 1) theta' (j :: used)
          | None -> ()
        done
    in
    assign 0 Theta.empty [];
    List.rev !results
  end

let full_cover element (q : A.conj) =
  let n = List.length q.A.atoms in
  let all = List.init n (fun i -> i) in
  List.find_opt (fun c -> c.covered = all) (covers element q)

let rewrite (q : A.conj) cover =
  match cover.covered with
  | [] -> q
  | first :: _ ->
    let atoms =
      List.concat
        (List.mapi
           (fun i a ->
             if i = first then [ cover.replacement ]
             else if List.mem i cover.covered then []
             else [ a ])
           q.A.atoms)
    in
    { q with A.atoms }

let exact_match element q = A.variant_equal element.def q

let generalizes g q = Option.is_some (full_cover { id = "__general"; def = g } q)
