lib/subsume/subsumption.mli: Braid_caql Braid_logic
