lib/subsume/range.ml: Braid_logic Braid_relalg List String
