lib/subsume/range.mli: Braid_caql Braid_relalg
