lib/subsume/subsumption.ml: Array Braid_caql Braid_logic Braid_relalg Hashtbl List Map Option Range Stdlib String
