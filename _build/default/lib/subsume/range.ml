module V = Braid_relalg.Value
module RP = Braid_relalg.Row_pred
module L = Braid_logic

type bound =
  | Unbounded
  | At of V.t * bool (* value, inclusive *)

type t = { lo : bound; hi : bound; ne : V.t list }

let unconstrained = { lo = Unbounded; hi = Unbounded; ne = [] }

(* Tighten the lower bound. *)
let raise_lo r v inclusive =
  match r.lo with
  | Unbounded -> { r with lo = At (v, inclusive) }
  | At (u, incl) ->
    let c = V.compare v u in
    if c > 0 then { r with lo = At (v, inclusive) }
    else if c = 0 && incl && not inclusive then { r with lo = At (v, false) }
    else r

let lower_hi r v inclusive =
  match r.hi with
  | Unbounded -> { r with hi = At (v, inclusive) }
  | At (u, incl) ->
    let c = V.compare v u in
    if c < 0 then { r with hi = At (v, inclusive) }
    else if c = 0 && incl && not inclusive then { r with hi = At (v, false) }
    else r

let add r (op : RP.cmp) v =
  match op with
  | RP.Eq -> lower_hi (raise_lo r v true) v true
  | RP.Ne -> { r with ne = if List.exists (V.equal v) r.ne then r.ne else v :: r.ne }
  | RP.Lt -> lower_hi r v false
  | RP.Le -> lower_hi r v true
  | RP.Gt -> raise_lo r v false
  | RP.Ge -> raise_lo r v true

let of_cmps var cmps =
  List.fold_left
    (fun r (op, a, b) ->
      match a, b with
      | L.Literal.Term (L.Term.Var x), L.Literal.Term (L.Term.Const v) when String.equal x var
        -> add r op v
      | L.Literal.Term (L.Term.Const v), L.Literal.Term (L.Term.Var x) when String.equal x var
        ->
        (* mirror: c op x  ==  x (flip op) c *)
        let flip : RP.cmp -> RP.cmp = function
          | RP.Eq -> RP.Eq
          | RP.Ne -> RP.Ne
          | RP.Lt -> RP.Gt
          | RP.Le -> RP.Ge
          | RP.Gt -> RP.Lt
          | RP.Ge -> RP.Le
        in
        add r (flip op) v
      | _, _ -> r)
    unconstrained cmps

let is_empty r =
  match r.lo, r.hi with
  | At (l, li), At (h, hi_inc) ->
    let c = V.compare l h in
    c > 0 || (c = 0 && not (li && hi_inc))
    || (c = 0 && li && hi_inc && List.exists (V.equal l) r.ne)
  | _, _ -> false

let equal_to r =
  match r.lo, r.hi with
  | At (l, true), At (h, true) when V.compare l h = 0 && not (List.exists (V.equal l) r.ne)
    -> Some l
  | _, _ -> None

(* Is every x in the range strictly below / at-or-below v? *)
let hi_implies_lt r v =
  match r.hi with
  | Unbounded -> false
  | At (h, incl) ->
    let c = V.compare h v in
    c < 0 || (c = 0 && not incl)

let hi_implies_le r v =
  match r.hi with Unbounded -> false | At (h, _) -> V.compare h v <= 0

let lo_implies_gt r v =
  match r.lo with
  | Unbounded -> false
  | At (l, incl) ->
    let c = V.compare l v in
    c > 0 || (c = 0 && not incl)

let lo_implies_ge r v =
  match r.lo with Unbounded -> false | At (l, _) -> V.compare l v >= 0

let implies r (op : RP.cmp) v =
  if is_empty r then true
  else
    match op with
    | RP.Eq -> (match equal_to r with Some u -> V.equal u v | None -> false)
    | RP.Ne ->
      List.exists (V.equal v) r.ne
      || hi_implies_lt r v || lo_implies_gt r v
      || (match equal_to r with Some u -> not (V.equal u v) | None -> false)
    | RP.Lt -> hi_implies_lt r v
    | RP.Le -> hi_implies_le r v
    | RP.Gt -> lo_implies_gt r v
    | RP.Ge -> lo_implies_ge r v
