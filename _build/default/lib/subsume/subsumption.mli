(** Subsumption of PSJ queries by cached view definitions (paper §5.3.2).

    A cache element [E] (a conjunctive view definition with a stored-column
    head) {e subsumes} a subquery [Q_c] of a query [Q] — written [E ⊐ Q_c]
    — when [Q_c]'s answers are derivable from [E]'s stored extension by
    selection and projection. The check generalizes one-way unification to
    conjunctions, following the paper's two-step algorithm:

    + match each of [E]'s relation occurrences against an occurrence of the
      same predicate in [Q], where "a constant in the subquery can match
      with the same constant or a variable at the corresponding position in
      the cache element, but a variable can only match with a variable";
    + reject elements that are {e more restricted} than the query: every
      occurrence of [E] must map consistently, [E]'s comparison constraints
      must be implied by [Q]'s (interval reasoning handles
      variable-vs-constant comparisons), and every compensating selection
      or exposed join variable must be available among [E]'s stored
      columns.

    A successful match yields a {b cover}: the set of [Q]'s atoms it
    replaces and a replacement atom over the element's stored relation;
    [rewrite] applies it. This strictly generalizes the exact-match reuse
    of [SELL87]/[IOAN88] (see [exact_match]) and the single-relation
    caching of [CERI86]. *)

type element = {
  id : string;  (** the cached relation's name; also the replacement atom's predicate *)
  def : Braid_caql.Ast.conj;  (** view definition; [def.head] = stored columns *)
}

type cover = {
  element_id : string;
  replacement : Braid_logic.Atom.t;
  covered : int list;  (** indices into the query's [atoms], sorted *)
}

val covers : element -> Braid_caql.Ast.conj -> cover list
(** All distinct ways the element derives a sub-conjunction of the query
    (the element's every atom must participate). Empty when the element
    cannot be used. *)

val full_cover : element -> Braid_caql.Ast.conj -> cover option
(** A cover whose [covered] is all of the query's atoms, if any. *)

val rewrite : Braid_caql.Ast.conj -> cover -> Braid_caql.Ast.conj
(** Replaces the covered atoms with the replacement occurrence; the
    compensating selections are encoded by constants and repeated
    variables in the replacement's argument list. *)

val exact_match : element -> Braid_caql.Ast.conj -> bool
(** Variant equality of definitions (the reuse test of BERMUDA-style
    result caching). *)

val generalizes : Braid_caql.Ast.conj -> Braid_caql.Ast.conj -> bool
(** [generalizes g q]: treating [g] as a view, are all of [q]'s answers
    derivable from [g] by selection/projection covering all of [q]? Used
    by QPO step 1 to decide query generalization. *)
