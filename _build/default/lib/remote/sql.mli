(** The remote DBMS's data manipulation language: a conventional SQL subset.

    This is deliberately {e weaker} than CAQL (the paper's point in §2/§5:
    the remote DBMS "does not support all CAQL operations"): conjunctive
    select-project-join blocks only — no recursion, no second-order
    predicates, no generators. The CMS's Remote DBMS Interface translates
    the remote-executable parts of CAQL queries into this language. *)

type col = { src : string; attr : string }
(** [src] is a FROM-clause alias. *)

type scalar =
  | Col of col
  | Const of Braid_relalg.Value.t

type cond = Braid_relalg.Row_pred.cmp * scalar * scalar

type source = { table : string; alias : string }

type select = {
  distinct : bool;
  columns : scalar list;  (** empty means [SELECT *] *)
  from : source list;
  where : cond list;
}

val select_all : string -> select
(** [SELECT * FROM t t]. *)

val to_string : select -> string
(** SQL text, e.g. for logging what would go over the wire. *)

val pp : Format.formatter -> select -> unit
