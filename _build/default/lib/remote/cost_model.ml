type t = {
  request_overhead_ms : float;
  server_scan_ms : float;
  transfer_tuple_ms : float;
  cache_tuple_ms : float;
  ie_resolution_ms : float;
}

let default =
  {
    request_overhead_ms = 50.0;
    server_scan_ms = 0.05;
    transfer_tuple_ms = 0.5;
    cache_tuple_ms = 0.01;
    ie_resolution_ms = 0.005;
  }

let local_only =
  {
    request_overhead_ms = 0.0;
    server_scan_ms = 0.0;
    transfer_tuple_ms = 0.0;
    cache_tuple_ms = 0.0;
    ie_resolution_ms = 0.0;
  }

let remote_query_cost m ~scanned ~returned =
  m.request_overhead_ms
  +. (m.server_scan_ms *. float_of_int scanned)
  +. (m.transfer_tuple_ms *. float_of_int returned)

let pp ppf m =
  Format.fprintf ppf
    "{request=%.2fms scan=%.3fms/t transfer=%.3fms/t cache=%.3fms/t ie=%.3fms/step}"
    m.request_overhead_ms m.server_scan_ms m.transfer_tuple_ms m.cache_tuple_ms
    m.ie_resolution_ms
