(** The remote database schema and its statistics.

    The IE "can access the schema information from the DBMS (via the CMS)"
    (§3) and the problem graph shaper uses "cardinality and selectivity
    information from the DBMS schema" (§4.1); this module is that source. *)

type table_stats = {
  cardinality : int;
  distinct_per_column : int array;  (** number of distinct values per column *)
}

type t

val create : unit -> t

val register : t -> string -> Braid_relalg.Schema.t -> unit
val refresh_stats : t -> string -> Braid_relalg.Relation.t -> unit

val schema_of : t -> string -> Braid_relalg.Schema.t option
val stats_of : t -> string -> table_stats option
val tables : t -> string list

val cardinality : t -> string -> int
(** 0 for unknown tables. *)

val eq_selectivity : t -> string -> int -> float
(** Estimated fraction of rows matching an equality predicate on the given
    column: [1 / distinct], defaulting to 0.1 when unknown. *)

val range_selectivity : float
(** Fixed textbook estimate for inequality predicates. *)
