module RP = Braid_relalg.Row_pred
module V = Braid_relalg.Value

type col = { src : string; attr : string }

type scalar =
  | Col of col
  | Const of V.t

type cond = RP.cmp * scalar * scalar

type source = { table : string; alias : string }

type select = {
  distinct : bool;
  columns : scalar list;
  from : source list;
  where : cond list;
}

let select_all t = { distinct = false; columns = []; from = [ { table = t; alias = t } ]; where = [] }

let pp_scalar ppf = function
  | Col { src; attr } -> Format.fprintf ppf "%s.%s" src attr
  | Const (V.Str s) -> Format.fprintf ppf "'%s'" s
  | Const v -> V.pp ppf v

let cmp_str (c : RP.cmp) =
  match c with RP.Eq -> "=" | RP.Ne -> "<>" | RP.Lt -> "<" | RP.Le -> "<=" | RP.Gt -> ">" | RP.Ge -> ">="

let pp_cond ppf (c, a, b) =
  Format.fprintf ppf "%a %s %a" pp_scalar a (cmp_str c) pp_scalar b

let pp_sep s ppf () = Format.fprintf ppf "%s" s

let pp ppf q =
  Format.fprintf ppf "SELECT %s" (if q.distinct then "DISTINCT " else "");
  (match q.columns with
   | [] -> Format.fprintf ppf "*"
   | cols -> Format.pp_print_list ~pp_sep:(pp_sep ", ") pp_scalar ppf cols);
  Format.fprintf ppf " FROM %a"
    (Format.pp_print_list ~pp_sep:(pp_sep ", ") (fun ppf s ->
         if String.equal s.table s.alias then Format.pp_print_string ppf s.table
         else Format.fprintf ppf "%s %s" s.table s.alias))
    q.from;
  match q.where with
  | [] -> ()
  | conds -> Format.fprintf ppf " WHERE %a" (Format.pp_print_list ~pp_sep:(pp_sep " AND ") pp_cond) conds

let to_string q = Format.asprintf "%a" pp q
