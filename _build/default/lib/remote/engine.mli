(** The remote DBMS's storage and query executor.

    Executes the SQL subset over stored relations with a left-deep
    hash-join pipeline, and reports how many tuples it touched so that the
    server can charge simulated cost for the work. *)

type t

val create : unit -> t

val catalog : t -> Catalog.t

val create_table : t -> string -> Braid_relalg.Schema.t -> unit
val insert : t -> string -> Braid_relalg.Tuple.t -> unit
val load : t -> Braid_relalg.Relation.t -> unit
(** Creates (or replaces) a table named after the relation and refreshes
    catalog statistics. *)

val table : t -> string -> Braid_relalg.Relation.t
(** Raises [Not_found]. *)

val execute : t -> Sql.select -> Braid_relalg.Relation.t * int
(** [execute t q] is [(result, tuples_scanned)]. The result schema names
    attributes [alias.attr]. Raises [Invalid_argument] on unknown tables or
    columns. *)
