lib/remote/cost_model.ml: Format
