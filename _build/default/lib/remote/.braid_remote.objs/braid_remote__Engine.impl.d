lib/remote/engine.ml: Braid_relalg Catalog Hashtbl List Option Printf Sql
