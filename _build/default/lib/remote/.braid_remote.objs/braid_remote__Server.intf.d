lib/remote/server.mli: Braid_relalg Braid_stream Catalog Cost_model Engine Sql
