lib/remote/engine.mli: Braid_relalg Catalog Sql
