lib/remote/server.ml: Braid_relalg Braid_stream Cost_model Engine List Sql
