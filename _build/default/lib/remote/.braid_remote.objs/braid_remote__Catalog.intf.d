lib/remote/catalog.mli: Braid_relalg
