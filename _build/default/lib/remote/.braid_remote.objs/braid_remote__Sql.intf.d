lib/remote/sql.mli: Braid_relalg Format
