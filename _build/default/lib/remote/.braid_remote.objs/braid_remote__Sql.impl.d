lib/remote/sql.ml: Braid_relalg Format String
