lib/remote/cost_model.mli: Format
