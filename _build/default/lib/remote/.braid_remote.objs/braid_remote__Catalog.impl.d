lib/remote/catalog.ml: Array Braid_relalg Hashtbl List Option Set String
