module R = Braid_relalg
module TS = Braid_stream.Tuple_stream

type stats = {
  requests : int;
  tuples_returned : int;
  tuples_scanned : int;
  server_ms : float;
  comm_ms : float;
}

type t = {
  engine : Engine.t;
  cost : Cost_model.t;
  mutable requests : int;
  mutable tuples_returned : int;
  mutable tuples_scanned : int;
  mutable server_ms : float;
  mutable comm_ms : float;
  mutable log : string list; (* newest first *)
}

let create ?(cost = Cost_model.default) () =
  {
    engine = Engine.create ();
    cost;
    requests = 0;
    tuples_returned = 0;
    tuples_scanned = 0;
    server_ms = 0.0;
    comm_ms = 0.0;
    log = [];
  }

let engine t = t.engine
let catalog t = Engine.catalog t.engine
let cost_model t = t.cost

let charge_request t q ~scanned =
  t.requests <- t.requests + 1;
  t.tuples_scanned <- t.tuples_scanned + scanned;
  t.server_ms <- t.server_ms +. (t.cost.Cost_model.server_scan_ms *. float_of_int scanned);
  t.comm_ms <- t.comm_ms +. t.cost.Cost_model.request_overhead_ms;
  t.log <- Sql.to_string q :: t.log

let charge_transfer t n =
  t.tuples_returned <- t.tuples_returned + n;
  t.comm_ms <- t.comm_ms +. (t.cost.Cost_model.transfer_tuple_ms *. float_of_int n)

let exec t q =
  let result, scanned = Engine.execute t.engine q in
  charge_request t q ~scanned;
  charge_transfer t (R.Relation.cardinality result);
  result

let open_cursor t ?(block_size = 32) q =
  let result, scanned = Engine.execute t.engine q in
  charge_request t q ~scanned;
  let base = TS.of_relation result in
  (* Wrap the raw result so every pulled tuple is charged to transfer;
     buffering then makes the charge advance block-wise. *)
  let c = TS.cursor base in
  let charged =
    TS.from (R.Relation.schema result) (fun () ->
        match TS.next c with
        | Some tup ->
          charge_transfer t 1;
          Some tup
        | None -> None)
  in
  TS.buffered block_size charged

let stats t =
  {
    requests = t.requests;
    tuples_returned = t.tuples_returned;
    tuples_scanned = t.tuples_scanned;
    server_ms = t.server_ms;
    comm_ms = t.comm_ms;
  }

let reset_stats t =
  t.requests <- 0;
  t.tuples_returned <- 0;
  t.tuples_scanned <- 0;
  t.server_ms <- 0.0;
  t.comm_ms <- 0.0;
  t.log <- []

let log t = List.rev t.log
