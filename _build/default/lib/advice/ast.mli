(** The advice language (paper §4.2): view specifications and path
    expressions, the two kinds of problem-specific information the IE gives
    the CMS ahead of a session.

    A {b view specification} [d_i(...) =def c_j(...) & ... & c_n(...)
    (Rj,...,Rk)] names a conjunction the IE will instantiate as CAQL
    queries; its parameters carry {b binding annotations}: [X^] (producer —
    the query will have a free variable there; advice {e against} indexing)
    and [Y?] (consumer — the query will supply a constant there; a prime
    candidate for indexing, §4.2.1).

    A {b path expression} abstracts the CAQL query sequence of a session:
    query patterns, sequences [( ... )^<lo,hi>] with repetition counts whose
    upper bound may be symbolic ([|Y|]), and alternations [[ ... ]^s] with an
    optional selection term (§4.2.2). *)

type binding =
  | Producer  (** [^] — executing the query produces bindings *)
  | Consumer  (** [?] — the query will carry a constant here *)

type view_spec = {
  id : string;
  def : Braid_caql.Ast.conj;
      (** the defining conjunction; [def.head] lists the parameters *)
  bindings : binding list;  (** one per head position *)
  rule_ids : string list;  (** provenance, "for human consumption" *)
}

type repetition = { lo : int; hi : bound }

and bound =
  | Fin of int
  | Cardinality of string  (** [|Y|]: the number of bindings produced for Y *)
  | Inf

type path =
  | Pattern of string * Braid_logic.Term.t list
      (** a query pattern [d_i(T1,...,Tn)] *)
  | Seq of path list * repetition
  | Alt of path list * int option  (** members with optional selection term *)

type t = { specs : view_spec list; path : path option }

val spec : ?rule_ids:string list -> id:string -> bindings:binding list ->
  Braid_caql.Ast.conj -> view_spec
(** Raises [Invalid_argument] when [bindings] and the head disagree in
    length. *)

val find_spec : t -> string -> view_spec option

val consumer_positions : view_spec -> int list
(** Head positions annotated [?] — the indexing recommendations. *)

val producer_only : view_spec -> bool
(** No consumer annotation anywhere: the relation is "strictly a producer
    relation", best produced lazily and without indexing (§4.2.1). *)

val once : path -> path
(** Wraps in a [<1,1>] sequence. *)

val pattern_ids : path -> string list
(** All spec ids mentioned, without duplicates. *)

val pp_view_spec : Format.formatter -> view_spec -> unit
val pp_path : Format.formatter -> path -> unit
val pp : Format.formatter -> t -> unit
