(** The Advice Manager's decision logic (paper Figure 5; §4.2's list of
    "critical decisions": prefetching, result caching, replacement,
    attribute indexing, cache-vs-DBMS execution, lazy-vs-eager evaluation,
    generalization).

    Stateless recommendations are derived from binding annotations; the
    stateful ones come from path-expression tracking. The CMS "only
    receives advice ... nor is advice necessary for the CMS to function"
    (§3) — with no advice every recommendation degrades to a neutral
    default. *)

type t

val create : Ast.t -> t
val no_advice : unit -> t

val specs : t -> Ast.view_spec list
val find_spec : t -> string -> Ast.view_spec option

val identify : t -> Braid_caql.Ast.conj -> Ast.view_spec option
(** Which view specification the query instantiates ("any given CAQL query
    will necessarily be a single view specification with zero or more query
    constants", §4.2.1). *)

val observe : t -> string -> unit
(** Advance path tracking: a query for this spec id has arrived. *)

val predicted_next : t -> Ast.view_spec list
(** Specs that may be asked for next — prefetch candidates. *)

val may_occur_later : t -> string -> bool
(** Whether queries for this spec may still arrive (replacement pinning
    keeps such elements; defaults to [true] without a path expression). *)

val expects_repetition : t -> string -> bool
(** After the current position, can the same spec recur? This is the signal
    for query generalization: fetch the whole parameterized family once
    instead of one instance per constant. *)

val index_recommendation : Ast.view_spec -> int list
(** Consumer-annotated head positions — "prime candidates for indexing". *)

val recommend_lazy : Ast.view_spec -> bool
(** Producer-only relations are "well advised to be produced lazily and
    without any indexing" (§4.2.1). *)

val should_cache_result : t -> Ast.view_spec -> bool
(** False for a producer-only relation with no predicted future request
    ("it may also choose not to cache the relation if there are no other
    predicted requests for it", §4.2.1). *)

val generalized : Ast.view_spec -> Braid_caql.Ast.conj
(** The spec's defining conjunction with all parameters free — the
    generalization target of QPO step 1. *)
