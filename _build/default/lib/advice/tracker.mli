(** Path expression tracking (paper §4.2.2: "the CMS must be able to keep
    track of the path expression element to which a given CAQL query
    corresponds. Path expression tracking is crucial if path expressions
    are to be of any use to the CMS").

    The path expression is compiled to an NFA over spec-id labels; the
    tracker maintains the set of states compatible with the queries
    observed so far and answers the two questions cache management needs:
    {e what may come next} (prefetching) and {e what may still be needed}
    (replacement pinning — the [d1] example at the end of §4.2.2).

    Repetition counts are abstracted to zero/one/many, and an alternation
    with selection term [k > 1] (or none) may repeat — a sound
    over-approximation for prediction. *)

type nfa

val compile : Ast.path -> nfa

type t

val start : nfa -> t

val advance : t -> string -> bool
(** Observe a query against the given spec id. Returns [false] when the id
    was not among the expected ones; the tracker then becomes permissive
    (all states) rather than useless. *)

val lost : t -> bool
(** Whether an unexpected query has been observed. *)

val next_possible : t -> string list
(** Spec ids that may label the very next query. *)

val may_occur_later : t -> string -> bool
(** Whether the spec id can still appear in the remainder of the session. *)

val finished : t -> bool
(** Whether the session may be complete at this point. *)
