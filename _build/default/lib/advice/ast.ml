module A = Braid_caql.Ast
module L = Braid_logic

type binding =
  | Producer
  | Consumer

type view_spec = {
  id : string;
  def : A.conj;
  bindings : binding list;
  rule_ids : string list;
}

type repetition = { lo : int; hi : bound }

and bound =
  | Fin of int
  | Cardinality of string
  | Inf

type path =
  | Pattern of string * L.Term.t list
  | Seq of path list * repetition
  | Alt of path list * int option

type t = { specs : view_spec list; path : path option }

let spec ?(rule_ids = []) ~id ~bindings def =
  if List.length bindings <> List.length def.A.head then
    invalid_arg "Advice.Ast.spec: one binding annotation per head position required";
  { id; def; bindings; rule_ids }

let find_spec t id = List.find_opt (fun s -> String.equal s.id id) t.specs

let consumer_positions s =
  List.concat (List.mapi (fun i b -> if b = Consumer then [ i ] else []) s.bindings)

let producer_only s = List.for_all (fun b -> b = Producer) s.bindings

let once p = Seq ([ p ], { lo = 1; hi = Fin 1 })

let pattern_ids p =
  let rec collect acc = function
    | Pattern (id, _) -> if List.mem id acc then acc else id :: acc
    | Seq (ps, _) | Alt (ps, _) -> List.fold_left collect acc ps
  in
  List.rev (collect [] p)

let binding_mark = function Producer -> "^" | Consumer -> "?"

let pp_sep s ppf () = Format.fprintf ppf "%s" s

let pp_view_spec ppf s =
  let heads =
    List.map2
      (fun t b ->
        match t with
        | L.Term.Var x -> x ^ binding_mark b
        | L.Term.Const v -> Braid_relalg.Value.to_string v)
      s.def.A.head s.bindings
  in
  Format.fprintf ppf "%s(%a) =def %a" s.id
    (Format.pp_print_list ~pp_sep:(pp_sep ", ") Format.pp_print_string)
    heads
    (Format.pp_print_list ~pp_sep:(pp_sep " & ") (fun ppf x -> x ppf))
    (List.map (fun a ppf -> L.Atom.pp ppf a) s.def.A.atoms
    @ List.map
        (fun (op, a, b) ppf -> L.Literal.pp ppf (L.Literal.Cmp (op, a, b)))
        s.def.A.cmps);
  match s.rule_ids with
  | [] -> ()
  | ids ->
    Format.fprintf ppf " (%a)"
      (Format.pp_print_list ~pp_sep:(pp_sep ",") Format.pp_print_string)
      ids

let pp_bound ppf = function
  | Fin n -> Format.pp_print_int ppf n
  | Cardinality x -> Format.fprintf ppf "|%s|" x
  | Inf -> Format.pp_print_string ppf "*"

let rec pp_path ppf = function
  | Pattern (id, args) ->
    Format.fprintf ppf "%s(%a)" id (Format.pp_print_list ~pp_sep:(pp_sep ", ") L.Term.pp) args
  | Seq (ps, { lo; hi }) ->
    Format.fprintf ppf "(%a)<%d,%a>"
      (Format.pp_print_list ~pp_sep:(pp_sep ", ") pp_path)
      ps lo pp_bound hi
  | Alt (ps, sel) ->
    Format.fprintf ppf "[%a]%s"
      (Format.pp_print_list ~pp_sep:(pp_sep ", ") pp_path)
      ps
      (match sel with Some k -> Printf.sprintf "^%d" k | None -> "")

let pp ppf t =
  Format.fprintf ppf "@[<v>%a%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,") pp_view_spec)
    t.specs
    (fun ppf -> function
      | Some p -> Format.fprintf ppf "@,path: %a" pp_path p
      | None -> ())
    t.path
