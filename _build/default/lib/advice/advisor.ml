module A = Braid_caql.Ast
module Sub = Braid_subsume.Subsumption

type t = {
  advice : Ast.t;
  tracker : Tracker.t option;
}

let create (advice : Ast.t) =
  let tracker = Option.map (fun p -> Tracker.start (Tracker.compile p)) advice.Ast.path in
  { advice; tracker }

let no_advice () = create { Ast.specs = []; path = None }

let specs t = t.advice.Ast.specs
let find_spec t id = Ast.find_spec t.advice id

let identify t (q : A.conj) =
  List.find_opt (fun (s : Ast.view_spec) -> Sub.generalizes s.Ast.def q) t.advice.Ast.specs

let observe t id =
  match t.tracker with Some tr -> ignore (Tracker.advance tr id) | None -> ()

let predicted_next t =
  match t.tracker with
  | None -> []
  | Some tr -> List.filter_map (Ast.find_spec t.advice) (Tracker.next_possible tr)

let may_occur_later t id =
  match t.tracker with None -> true | Some tr -> Tracker.may_occur_later tr id

let expects_repetition t id = may_occur_later t id

let index_recommendation = Ast.consumer_positions

let recommend_lazy = Ast.producer_only

let should_cache_result t (s : Ast.view_spec) =
  not (Ast.producer_only s) || may_occur_later t s.Ast.id

let generalized (s : Ast.view_spec) = s.Ast.def
