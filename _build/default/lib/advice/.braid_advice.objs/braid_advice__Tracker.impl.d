lib/advice/tracker.ml: Ast Hashtbl Int List Set String
