lib/advice/ast.mli: Braid_caql Braid_logic Format
