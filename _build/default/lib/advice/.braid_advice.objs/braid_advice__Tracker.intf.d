lib/advice/tracker.mli: Ast
