lib/advice/ast.ml: Braid_caql Braid_logic Braid_relalg Format List Printf String
