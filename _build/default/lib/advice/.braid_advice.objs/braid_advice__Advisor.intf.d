lib/advice/advisor.mli: Ast Braid_caql
