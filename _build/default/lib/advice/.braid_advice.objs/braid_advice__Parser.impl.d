lib/advice/parser.ml: Ast Braid_caql Braid_logic Braid_relalg Buffer List Printf String
