lib/advice/advisor.ml: Ast Braid_caql Braid_subsume List Option Tracker
