lib/advice/parser.mli: Ast
