(** Concrete syntax for the advice language, matching the paper's notation:

    {v
    d1(Y^) =def b1(c1, Y).
    d2(X^, Y?) =def b2(X, Z) & b3(Z, c2, Y).
    path (d1(Y), (d2(X, Y), d3(X, Y))<0,|Y|>)<1,1>.
    v}

    - Spec parameters are variables annotated [^] (producer) or [?]
      (consumer); constants may appear directly in the defining conjuncts.
    - Bodies are conjunctions of atoms and simple comparisons
      ([X < 5], [Y <> c2]).
    - A sequence [( ... )] takes an optional repetition count [<lo,hi>]
      (default [<1,1>]) whose upper bound is an integer, [*] (unbounded) or
      [|Y|] (the cardinality of Y's bindings); an alternation [[ ... ]]
      takes an optional selection term [^k].
    - Clauses end with [.]; [%] starts a comment; at most one [path]
      clause. *)

exception Error of string

val parse : string -> Ast.t
(** Parses a whole advice set (spec clauses + optional path clause). *)

val parse_path : string -> Ast.path
(** Parses a bare path expression (no [path] keyword, no final dot). *)
