module L = Braid_logic
module V = Braid_relalg.Value
module RP = Braid_relalg.Row_pred
module A = Braid_caql.Ast

exception Error of string

(* --- lexer --- *)

type token =
  | Tident of string
  | Tvar of string
  | Tint of int
  | Tstring of string
  | Tlparen
  | Trparen
  | Tlbracket
  | Trbracket
  | Tcomma
  | Tamp
  | Tdot
  | Tcaret
  | Tquestion
  | Tbar
  | Tstar
  | Tlt
  | Tgt
  | Tdefeq  (** =def *)
  | Tcmp of RP.cmp
  | Teof

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let fail msg = raise (Error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let emit t = tokens := t :: !tokens in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '%' then
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    else if c = '(' then (emit Tlparen; incr pos)
    else if c = ')' then (emit Trparen; incr pos)
    else if c = '[' then (emit Tlbracket; incr pos)
    else if c = ']' then (emit Trbracket; incr pos)
    else if c = ',' then (emit Tcomma; incr pos)
    else if c = '&' then (emit Tamp; incr pos)
    else if c = '.' then (emit Tdot; incr pos)
    else if c = '^' then (emit Tcaret; incr pos)
    else if c = '?' then (emit Tquestion; incr pos)
    else if c = '|' then (emit Tbar; incr pos)
    else if c = '*' then (emit Tstar; incr pos)
    else if c = '=' then begin
      (* '=def' or a plain '=' comparison *)
      if !pos + 3 < n && String.sub src (!pos + 1) 3 = "def" then begin
        emit Tdefeq;
        pos := !pos + 4
      end
      else begin
        emit (Tcmp RP.Eq);
        incr pos
      end
    end
    else if c = '<' then begin
      match peek 1 with
      | Some '=' ->
        emit (Tcmp RP.Le);
        pos := !pos + 2
      | Some '>' ->
        emit (Tcmp RP.Ne);
        pos := !pos + 2
      | Some _ | None ->
        emit Tlt;
        incr pos
    end
    else if c = '>' then begin
      match peek 1 with
      | Some '=' ->
        emit (Tcmp RP.Ge);
        pos := !pos + 2
      | Some _ | None ->
        emit Tgt;
        incr pos
    end
    else if c = '\'' || c = '"' then begin
      let quote = c in
      let buf = Buffer.create 16 in
      incr pos;
      while !pos < n && src.[!pos] <> quote do
        Buffer.add_char buf src.[!pos];
        incr pos
      done;
      if !pos >= n then fail "unterminated string";
      incr pos;
      emit (Tstring (Buffer.contents buf))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !pos in
      while !pos < n && src.[!pos] >= '0' && src.[!pos] <= '9' do
        incr pos
      done;
      emit (Tint (int_of_string (String.sub src start (!pos - start))))
    end
    else if is_ident_char c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      if (c >= 'A' && c <= 'Z') || c = '_' then emit (Tvar text) else emit (Tident text)
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  emit Teof;
  List.rev !tokens

(* --- parser state --- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> Teof
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok msg = if peek st = tok then advance st else raise (Error ("expected " ^ msg))

let parse_term st =
  match peek st with
  | Tvar x ->
    advance st;
    L.Term.Var x
  | Tident s ->
    advance st;
    L.Term.Const (V.Str s)
  | Tstring s ->
    advance st;
    L.Term.Const (V.Str s)
  | Tint k ->
    advance st;
    L.Term.Const (V.Int k)
  | _ -> raise (Error "expected a term")

let parse_term_list st =
  expect st Tlparen "(";
  if peek st = Trparen then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let t = parse_term st in
      match peek st with
      | Tcomma ->
        advance st;
        loop (t :: acc)
      | Trparen ->
        advance st;
        List.rev (t :: acc)
      | _ -> raise (Error "expected ',' or ')'")
    in
    loop []
  end

(* --- view specifications --- *)

let parse_param st =
  let t = parse_term st in
  match t with
  | L.Term.Var _ ->
    let binding =
      match peek st with
      | Tcaret ->
        advance st;
        Ast.Producer
      | Tquestion ->
        advance st;
        Ast.Consumer
      | _ -> raise (Error "spec parameters need a ^ or ? annotation")
    in
    (t, Some binding)
  | L.Term.Const _ -> (t, None)

let parse_param_list st =
  expect st Tlparen "(";
  if peek st = Trparen then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let p = parse_param st in
      match peek st with
      | Tcomma ->
        advance st;
        loop (p :: acc)
      | Trparen ->
        advance st;
        List.rev (p :: acc)
      | _ -> raise (Error "expected ',' or ')'")
    in
    loop []
  end

type conjunct =
  | Catom of L.Atom.t
  | Ccmp of A.comparison

let parse_conjunct st =
  match peek st, peek2 st with
  | Tident name, Tlparen ->
    advance st;
    Catom (L.Atom.make name (parse_term_list st))
  | _, _ ->
    let lhs = parse_term st in
    let op =
      match peek st with
      | Tcmp op ->
        advance st;
        op
      | Tlt ->
        advance st;
        RP.Lt
      | Tgt ->
        advance st;
        RP.Gt
      | _ -> raise (Error "expected a comparison operator")
    in
    let rhs = parse_term st in
    Ccmp (op, L.Literal.Term lhs, L.Literal.Term rhs)

let parse_body st =
  let rec loop acc =
    let c = parse_conjunct st in
    match peek st with
    | Tamp ->
      advance st;
      loop (c :: acc)
    | _ -> List.rev (c :: acc)
  in
  loop []

let parse_spec st id =
  let params = parse_param_list st in
  expect st Tdefeq "'=def'";
  let body = parse_body st in
  expect st Tdot "'.'";
  let atoms = List.filter_map (function Catom a -> Some a | Ccmp _ -> None) body in
  let cmps = List.filter_map (function Ccmp c -> Some c | Catom _ -> None) body in
  (* constants among the parameters become constants of the head *)
  let head = List.map fst params in
  let bindings = List.filter_map snd params in
  let annotated_vars =
    List.filter (fun (t, _) -> L.Term.is_var t) params |> List.length
  in
  if annotated_vars <> List.length bindings then
    raise (Error "internal: annotation bookkeeping");
  (* Ast.spec requires one binding per head position; constants are neither
     producers nor consumers — model them as producers of a fixed value. *)
  let bindings_full =
    List.map
      (fun (t, b) ->
        match b with Some b -> b | None -> ignore t; Ast.Producer)
      params
  in
  Ast.spec ~id ~bindings:bindings_full (A.conj ~cmps head atoms)

(* --- path expressions --- *)

let parse_bound st =
  match peek st with
  | Tint k ->
    advance st;
    Ast.Fin k
  | Tstar ->
    advance st;
    Ast.Inf
  | Tbar ->
    advance st;
    (match peek st with
     | Tvar x ->
       advance st;
       expect st Tbar "'|'";
       Ast.Cardinality x
     | _ -> raise (Error "expected a variable inside |...|"))
  | _ -> raise (Error "expected an integer, * or |Var|")

let parse_repetition st =
  (* optional <lo,hi>; default <1,1> *)
  match peek st with
  | Tlt ->
    advance st;
    let lo =
      match peek st with
      | Tint k ->
        advance st;
        k
      | _ -> raise (Error "expected the lower repetition bound")
    in
    expect st Tcomma "','";
    let hi = parse_bound st in
    expect st Tgt "'>'";
    { Ast.lo; hi }
  | _ -> { Ast.lo = 1; hi = Ast.Fin 1 }

let rec parse_path_expr st =
  match peek st with
  | Tlparen ->
    advance st;
    let items = parse_path_items st Trparen in
    expect st Trparen "')'";
    let rep = parse_repetition st in
    Ast.Seq (items, rep)
  | Tlbracket ->
    advance st;
    let items = parse_path_items st Trbracket in
    expect st Trbracket "']'";
    let sel =
      match peek st with
      | Tcaret ->
        advance st;
        (match peek st with
         | Tint k ->
           advance st;
           Some k
         | _ -> raise (Error "expected the selection term after ^"))
      | _ -> None
    in
    Ast.Alt (items, sel)
  | Tident id ->
    advance st;
    let args = parse_term_list st in
    Ast.Pattern (id, args)
  | _ -> raise (Error "expected a pattern, '(' or '['")

and parse_path_items st closer =
  let rec loop acc =
    let p = parse_path_expr st in
    match peek st with
    | Tcomma ->
      advance st;
      loop (p :: acc)
    | t when t = closer -> List.rev (p :: acc)
    | _ -> raise (Error "expected ',' or the closing bracket")
  in
  loop []

let parse_path text =
  let st = { toks = tokenize text } in
  let p = parse_path_expr st in
  if peek st <> Teof then raise (Error "trailing input after path expression");
  p

let parse text =
  let st = { toks = tokenize text } in
  let specs = ref [] in
  let path = ref None in
  let rec loop () =
    match peek st with
    | Teof -> ()
    | Tident "path" ->
      advance st;
      if !path <> None then raise (Error "more than one path clause");
      path := Some (parse_path_expr st);
      expect st Tdot "'.'";
      loop ()
    | Tident id ->
      advance st;
      specs := parse_spec st id :: !specs;
      loop ()
    | _ -> raise (Error "expected a spec clause or 'path'")
  in
  loop ();
  { Ast.specs = List.rev !specs; path = !path }
