type nfa = {
  mutable n : int;
  eps : (int, int list ref) Hashtbl.t;
  trans : (int, (string * int) list ref) Hashtbl.t;
  start_state : int;
  final_state : int;
}

let new_state nfa =
  let s = nfa.n in
  nfa.n <- s + 1;
  s

let add_eps nfa a b =
  match Hashtbl.find_opt nfa.eps a with
  | Some cell -> cell := b :: !cell
  | None -> Hashtbl.replace nfa.eps a (ref [ b ])

let add_trans nfa a label b =
  match Hashtbl.find_opt nfa.trans a with
  | Some cell -> cell := (label, b) :: !cell
  | None -> Hashtbl.replace nfa.trans a (ref [ (label, b) ])

(* Build the fragment for [p]; returns (entry, exit). *)
let rec build nfa (p : Ast.path) =
  match p with
  | Ast.Pattern (id, _) ->
    let s = new_state nfa and f = new_state nfa in
    add_trans nfa s id f;
    (s, f)
  | Ast.Seq (ps, { Ast.lo; hi }) ->
    let s = new_state nfa and f = new_state nfa in
    let unit_entry, unit_exit =
      match ps with
      | [] ->
        let st = new_state nfa in
        (st, st)
      | first :: rest ->
        let s0, f0 = build nfa first in
        let fexit =
          List.fold_left
            (fun fprev p ->
              (* The IE may fail and backtrack mid-sequence: the tail of a
                 sequence is abandonable (§4.2.2's tracking example allows
                 "d1, d4, d1, ..."), so each junction can exit early. *)
              add_eps nfa fprev f;
              let s', f' = build nfa p in
              add_eps nfa fprev s';
              f')
            f0 rest
        in
        (s0, fexit)
    in
    add_eps nfa s unit_entry;
    add_eps nfa unit_exit f;
    if lo = 0 then add_eps nfa s f;
    let many = match hi with Ast.Fin k -> k > 1 | Ast.Cardinality _ | Ast.Inf -> true in
    if many then begin
      add_eps nfa unit_exit unit_entry;
      (* abandoned iterations may also restart the unit *)
      add_eps nfa f s
    end;
    (s, f)
  | Ast.Alt (ps, sel) ->
    let s = new_state nfa and f = new_state nfa in
    List.iter
      (fun p ->
        let s', f' = build nfa p in
        add_eps nfa s s';
        add_eps nfa f' f)
      ps;
    (* Selection term 1 means mutually exclusive members: exactly one per
       occurrence. Otherwise several members may appear in any order. *)
    (match sel with Some 1 -> () | Some _ | None -> add_eps nfa f s);
    (s, f)

let compile p =
  let nfa =
    { n = 0; eps = Hashtbl.create 64; trans = Hashtbl.create 64; start_state = 0; final_state = 0 }
  in
  let s, f = build nfa p in
  { nfa with start_state = s; final_state = f }

module Int_set = Set.Make (Int)

let closure nfa states =
  let rec go acc = function
    | [] -> acc
    | s :: rest ->
      if Int_set.mem s acc then go acc rest
      else
        let acc = Int_set.add s acc in
        let nexts = match Hashtbl.find_opt nfa.eps s with Some cell -> !cell | None -> [] in
        go acc (nexts @ rest)
  in
  go Int_set.empty states

type t = { nfa : nfa; mutable current : Int_set.t; mutable lost_flag : bool }

let all_states nfa = List.init nfa.n (fun i -> i)

let start nfa = { nfa; current = closure nfa [ nfa.start_state ]; lost_flag = false }

let advance t id =
  let targets =
    Int_set.fold
      (fun s acc ->
        match Hashtbl.find_opt t.nfa.trans s with
        | Some cell ->
          List.fold_left
            (fun acc (label, dst) -> if String.equal label id then dst :: acc else acc)
            acc !cell
        | None -> acc)
      t.current []
  in
  if targets = [] then begin
    t.lost_flag <- true;
    t.current <- closure t.nfa (all_states t.nfa);
    false
  end
  else begin
    t.current <- closure t.nfa targets;
    true
  end

let lost t = t.lost_flag

let next_possible t =
  Int_set.fold
    (fun s acc ->
      match Hashtbl.find_opt t.nfa.trans s with
      | Some cell ->
        List.fold_left (fun acc (label, _) -> if List.mem label acc then acc else label :: acc) acc !cell
      | None -> acc)
    t.current []
  |> List.rev

let may_occur_later t id =
  (* BFS over both epsilon and labeled edges from the current states. *)
  let visited = Hashtbl.create 64 in
  let rec go = function
    | [] -> false
    | s :: rest ->
      if Hashtbl.mem visited s then go rest
      else begin
        Hashtbl.add visited s ();
        let eps = match Hashtbl.find_opt t.nfa.eps s with Some c -> !c | None -> [] in
        let labeled = match Hashtbl.find_opt t.nfa.trans s with Some c -> !c | None -> [] in
        if List.exists (fun (label, _) -> String.equal label id) labeled then true
        else go (eps @ List.map snd labeled @ rest)
      end
  in
  go (Int_set.elements t.current)

let finished t = Int_set.mem t.nfa.final_state t.current
