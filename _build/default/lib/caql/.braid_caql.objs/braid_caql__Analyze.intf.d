lib/caql/analyze.mli: Ast Braid_relalg
