lib/caql/eval.ml: Analyze Array Ast Braid_logic Braid_relalg Braid_stream Format Hashtbl List String
