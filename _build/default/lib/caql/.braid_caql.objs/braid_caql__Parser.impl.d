lib/caql/parser.ml: Ast Braid_logic Braid_relalg Buffer List Printf String
