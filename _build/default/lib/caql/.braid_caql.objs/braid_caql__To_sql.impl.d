lib/caql/to_sql.ml: Ast Braid_logic Braid_relalg Braid_remote Hashtbl List Printf
