lib/caql/ast.ml: Braid_logic Braid_relalg Format Hashtbl List Printf String
