lib/caql/to_sql.mli: Ast Braid_relalg Braid_remote
