lib/caql/ast.mli: Braid_logic Braid_relalg Format
