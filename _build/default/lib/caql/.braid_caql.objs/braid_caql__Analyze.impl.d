lib/caql/analyze.ml: Ast Braid_logic Braid_relalg List Option Printf String
