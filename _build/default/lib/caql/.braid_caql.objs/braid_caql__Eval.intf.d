lib/caql/eval.mli: Ast Braid_logic Braid_relalg Braid_stream
