lib/caql/parser.mli: Ast
