(** Translation of the remote-executable fragment of CAQL to the remote
    DBMS's DML (the Remote DBMS Interface's "query translation", §3/§5.5).

    Only conjunctive queries whose atoms are all base relations, whose
    comparisons are arithmetic-free, and whose head is variable-only can be
    shipped; everything else (arithmetic, aggregation, generators,
    second-order operations) must stay in the CMS — this asymmetry is
    exactly the paper's "the remote DBMS does not support all CAQL
    operations, but the CMS does" (§5.3.3). *)

type failure =
  | No_relations  (** an atom-less conjunct has nothing to ship *)
  | Unknown_relation of string
  | Arithmetic_comparison
  | Constant_in_head
  | Unbound_column of string

val translate :
  schema_of:(string -> Braid_relalg.Schema.t option) ->
  Ast.conj ->
  (Braid_remote.Sql.select, failure) result
(** The result's SELECT list is the head variables in head order. *)

val failure_to_string : failure -> string
