module L = Braid_logic
module RP = Braid_relalg.Row_pred

type comparison = RP.cmp * L.Literal.expr * L.Literal.expr

type conj = {
  head : L.Term.t list;
  atoms : L.Atom.t list;
  cmps : comparison list;
}

type t =
  | Conj of conj
  | Union of t list
  | Diff of t * t
  | Distinct of t
  | Division of t * t
  | Fixpoint of fixpoint
  | Agg of agg

and fixpoint = {
  name : string;
  base : t;
  step : t;
}

and agg = {
  keys : int list;
  specs : Braid_relalg.Aggregate.spec list;
  source : t;
}

let conj ?(cmps = []) head atoms = { head; atoms; cmps }

let rec head_arity = function
  | Conj c -> List.length c.head
  | Union [] -> invalid_arg "Ast.head_arity: empty union"
  | Union (q :: _) -> head_arity q
  | Diff (a, _) -> head_arity a
  | Distinct q -> head_arity q
  | Division (dividend, divisor) -> head_arity dividend - head_arity divisor
  | Fixpoint f -> head_arity f.base
  | Agg a -> List.length a.keys + List.length a.specs

let uniq xs =
  let rec loop seen = function
    | [] -> List.rev seen
    | x :: rest -> loop (if List.mem x seen then seen else x :: seen) rest
  in
  loop [] xs

let term_vars = function L.Term.Var x -> [ x ] | L.Term.Const _ -> []

let cmp_vars (_, a, b) = L.Literal.expr_vars a @ L.Literal.expr_vars b

let body_vars c =
  uniq (List.concat_map L.Atom.vars c.atoms @ List.concat_map cmp_vars c.cmps)

let conj_vars c =
  uniq (List.concat_map term_vars c.head @ body_vars c)

let head_constants c =
  List.filter_map (function L.Term.Const v -> Some v | L.Term.Var _ -> None) c.head

let constants c =
  head_constants c
  @ List.concat_map L.Atom.constants c.atoms
  @ List.concat_map
      (fun (_, a, b) ->
        let rec consts = function
          | L.Literal.Term (L.Term.Const v) -> [ v ]
          | L.Literal.Term (L.Term.Var _) -> []
          | L.Literal.Add (x, y) | L.Literal.Sub (x, y) | L.Literal.Mul (x, y) | L.Literal.Div (x, y)
            -> consts x @ consts y
        in
        consts a @ consts b)
      c.cmps

let apply_subst s c =
  let apply_cmp (op, a, b) =
    match L.Literal.apply s (L.Literal.Cmp (op, a, b)) with
    | L.Literal.Cmp (op, a, b) -> (op, a, b)
    | L.Literal.Rel _ -> assert false
  in
  {
    head = List.map (L.Subst.resolve s) c.head;
    atoms = List.map (L.Subst.apply_atom s) c.atoms;
    cmps = List.map apply_cmp c.cmps;
  }

let rename_vars f c =
  let rename_cmp (op, a, b) =
    match L.Literal.rename f (L.Literal.Cmp (op, a, b)) with
    | L.Literal.Cmp (op, a, b) -> (op, a, b)
    | L.Literal.Rel _ -> assert false
  in
  {
    head = List.map (function L.Term.Var x -> L.Term.Var (f x) | t -> t) c.head;
    atoms = List.map (L.Atom.rename f) c.atoms;
    cmps = List.map rename_cmp c.cmps;
  }

let canonical c =
  let mapping = Hashtbl.create 8 in
  let counter = ref 0 in
  let f x =
    match Hashtbl.find_opt mapping x with
    | Some y -> y
    | None ->
      let y = Printf.sprintf "v%d" !counter in
      incr counter;
      Hashtbl.add mapping x y;
      y
  in
  rename_vars f c

let pp_sep s ppf () = Format.fprintf ppf "%s" s

let pp_cmp_lit ppf (op, a, b) = L.Literal.pp ppf (L.Literal.Cmp (op, a, b))

let pp_conj ppf c =
  Format.fprintf ppf "(%a) :- %a"
    (Format.pp_print_list ~pp_sep:(pp_sep ", ") L.Term.pp)
    c.head
    (Format.pp_print_list ~pp_sep:(pp_sep " & ") (fun ppf x -> x ppf))
    (List.map (fun a ppf -> L.Atom.pp ppf a) c.atoms
    @ List.map (fun cmp ppf -> pp_cmp_lit ppf cmp) c.cmps)

let conj_to_string c = Format.asprintf "%a" pp_conj c

let variant_equal a b =
  String.equal (conj_to_string (canonical a)) (conj_to_string (canonical b))

let rec pp ppf = function
  | Conj c -> pp_conj ppf c
  | Union qs ->
    Format.fprintf ppf "(%a)" (Format.pp_print_list ~pp_sep:(pp_sep " | ") pp) qs
  | Diff (a, b) -> Format.fprintf ppf "(%a EXCEPT %a)" pp a pp b
  | Distinct q -> Format.fprintf ppf "SETOF(%a)" pp q
  | Division (a, b) -> Format.fprintf ppf "(%a DIVIDE %a)" pp a pp b
  | Fixpoint f -> Format.fprintf ppf "FIX %s = (%a) UNION (%a)" f.name pp f.base pp f.step
  | Agg a ->
    Format.fprintf ppf "AGG[keys=%a; %a](%a)"
      (Format.pp_print_list ~pp_sep:(pp_sep ",") Format.pp_print_int)
      a.keys
      (Format.pp_print_list ~pp_sep:(pp_sep ",") (fun ppf sp ->
           Format.pp_print_string ppf (Braid_relalg.Aggregate.name_of_spec sp)))
      a.specs pp a.source

let to_string q = Format.asprintf "%a" pp q
