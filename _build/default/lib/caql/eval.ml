module L = Braid_logic
module R = Braid_relalg
module TS = Braid_stream.Tuple_stream

exception Unsafe of string

(* --- eager evaluation --- *)

(* Variable environment: variable name -> column in the accumulator. *)
type env = (string * int) list

let unit_relation () =
  let r = R.Relation.create (R.Schema.make []) in
  R.Relation.add r [||];
  r

(* Selection local to one relation occurrence: constants and repeated
   variables within the atom. *)
let local_pred (a : L.Atom.t) =
  let preds = ref [] in
  let seen = Hashtbl.create 8 in
  List.iteri
    (fun i t ->
      match t with
      | L.Term.Const v -> preds := R.Row_pred.Cmp (R.Row_pred.Eq, Col i, Lit v) :: !preds
      | L.Term.Var x ->
        (match Hashtbl.find_opt seen x with
         | Some j -> preds := R.Row_pred.Cmp (R.Row_pred.Eq, Col i, Col j) :: !preds
         | None -> Hashtbl.add seen x i))
    a.L.Atom.args;
  R.Row_pred.conj (List.rev !preds)

(* Join columns between the accumulator and the atom's extension, plus the
   new variable bindings the atom contributes. *)
let atom_joins (env : env) (a : L.Atom.t) =
  let joins = ref [] in
  let fresh = ref [] in
  List.iteri
    (fun i t ->
      match t with
      | L.Term.Const _ -> ()
      | L.Term.Var x ->
        (match List.assoc_opt x env with
         | Some col -> joins := (col, i) :: !joins
         | None -> if not (List.mem_assoc x !fresh) then fresh := (x, i) :: !fresh))
    a.L.Atom.args;
  (List.rev !joins, List.rev !fresh)

let operand_of_expr env e =
  let rec go = function
    | L.Literal.Term (L.Term.Const v) -> R.Row_pred.Lit v
    | L.Literal.Term (L.Term.Var x) ->
      (match List.assoc_opt x env with
       | Some col -> R.Row_pred.Col col
       | None -> raise (Unsafe ("unbound variable in comparison: " ^ x)))
    | L.Literal.Add (a, b) -> R.Row_pred.Add (go a, go b)
    | L.Literal.Sub (a, b) -> R.Row_pred.Sub (go a, go b)
    | L.Literal.Mul (a, b) -> R.Row_pred.Mul (go a, go b)
    | L.Literal.Div (a, b) -> R.Row_pred.Div (go a, go b)
  in
  go e

let cmp_vars (_, a, b) = L.Literal.expr_vars a @ L.Literal.expr_vars b

let conj ~source ~schema_of (c : Ast.conj) =
  (* Join pipeline; comparisons are applied as soon as their variables are
     all bound. *)
  let apply_ready env pending rel =
    let ready, pending =
      List.partition
        (fun cmp -> List.for_all (fun x -> List.mem_assoc x env) (cmp_vars cmp))
        pending
    in
    let preds =
      List.map
        (fun (op, a, b) -> R.Row_pred.Cmp (op, operand_of_expr env a, operand_of_expr env b))
        ready
    in
    let rel = if preds = [] then rel else R.Ops.select (R.Row_pred.conj preds) rel in
    (rel, pending)
  in
  let step (acc, env, pending) (a : L.Atom.t) =
    let ext = source a in
    let ext = R.Ops.select (local_pred a) ext in
    let joins, fresh = atom_joins env a in
    let acc_arity = R.Schema.arity (R.Relation.schema acc) in
    let joined =
      match joins with
      | [] -> R.Ops.product acc ext
      | _ ->
        R.Ops.hash_join ~left_cols:(List.map fst joins) ~right_cols:(List.map snd joins) acc
          ext
    in
    let env = env @ List.map (fun (x, i) -> (x, acc_arity + i)) fresh in
    let joined, pending = apply_ready env pending joined in
    (joined, env, pending)
  in
  (* Ground comparisons (no variables) are applied straight away so that a
     body of pure ground comparisons evaluates without any atom. *)
  let acc0, pending0 = apply_ready [] c.Ast.cmps (unit_relation ()) in
  let acc, env, pending = List.fold_left step (acc0, [], pending0) c.Ast.atoms in
  (match pending with
   | [] -> ()
   | cmp :: _ ->
     raise
       (Unsafe
          (Format.asprintf "comparison with unbound variable: %a" L.Literal.pp
             (let op, a, b = cmp in
              L.Literal.Cmp (op, a, b)))));
  (* Project the head. *)
  let out_schema = Analyze.schema_of_conj schema_of c in
  let out = R.Relation.create out_schema in
  let cols =
    List.map
      (function
        | L.Term.Var x ->
          (match List.assoc_opt x env with
           | Some col -> `Col col
           | None -> raise (Unsafe ("unbound head variable: " ^ x)))
        | L.Term.Const v -> `Const v)
      c.Ast.head
  in
  R.Relation.iter
    (fun t ->
      R.Relation.add out
        (Array.of_list
           (List.map (function `Col i -> R.Tuple.get t i | `Const v -> v) cols)))
    acc;
  out

let rec query ~source ~schema_of = function
  | Ast.Conj c -> conj ~source ~schema_of c
  | Ast.Union [] -> invalid_arg "Eval.query: empty union"
  | Ast.Union (q :: qs) ->
    let first = query ~source ~schema_of q in
    R.Relation.distinct
      (List.fold_left
         (fun acc q' -> R.Ops.union_all acc (query ~source ~schema_of q'))
         first qs)
  | Ast.Diff (a, b) ->
    R.Ops.diff (query ~source ~schema_of a) (query ~source ~schema_of b)
  | Ast.Distinct q -> R.Relation.distinct (query ~source ~schema_of q)
  | Ast.Division (dividend, divisor) ->
    (* k s.t. (k, v) ∈ dividend for every v ∈ divisor:
       candidates − π_k((candidates × divisor) − dividend) *)
    let d = R.Relation.distinct (query ~source ~schema_of dividend) in
    let s = R.Relation.distinct (query ~source ~schema_of divisor) in
    let total = R.Schema.arity (R.Relation.schema d) in
    let v_arity = R.Schema.arity (R.Relation.schema s) in
    let k_arity = total - v_arity in
    if k_arity < 0 then
      invalid_arg "Eval.query: division dividend narrower than divisor";
    let key_cols = List.init k_arity (fun i -> i) in
    let candidates = R.Relation.distinct (R.Ops.project key_cols d) in
    let pairs = R.Ops.product candidates s in
    let missing = R.Ops.diff pairs d in
    let bad = R.Relation.distinct (R.Ops.project key_cols missing) in
    R.Ops.diff candidates bad
  | Ast.Fixpoint f ->
    (* iterate base ∪ step(current) to a fixpoint, set semantics *)
    let current = ref (R.Relation.distinct (query ~source ~schema_of f.Ast.base)) in
    let schema = R.Relation.schema !current in
    let rec iterate guard =
      if guard > 10_000 then
        invalid_arg "Eval.query: fixpoint did not converge within 10000 rounds";
      let source' (a : L.Atom.t) =
        if String.equal a.L.Atom.pred f.Ast.name then !current else source a
      in
      let schema_of' n = if String.equal n f.Ast.name then Some schema else schema_of n in
      let stepped = query ~source:source' ~schema_of:schema_of' f.Ast.step in
      let next = R.Relation.distinct (R.Ops.union_all !current stepped) in
      if R.Relation.cardinality next > R.Relation.cardinality !current then begin
        current := next;
        iterate (guard + 1)
      end
    in
    iterate 0;
    R.Relation.with_name f.Ast.name !current
  | Ast.Agg a ->
    let src = query ~source ~schema_of a.Ast.source in
    R.Aggregate.group_by a.Ast.keys a.Ast.specs src

(* --- lazy evaluation --- *)

(* Try to extend [env] so that the atom's arguments match the tuple. *)
let match_tuple env (a : L.Atom.t) tup =
  let rec loop env i = function
    | [] -> Some env
    | t :: rest ->
      let v = R.Tuple.get tup i in
      (match L.Subst.resolve env t with
       | L.Term.Const c -> if R.Value.equal c v then loop env (i + 1) rest else None
       | L.Term.Var x -> loop (L.Subst.bind x (L.Term.Const v) env) (i + 1) rest)
  in
  loop env 0 a.L.Atom.args

(* Comparisons that are ground under [env] must hold; non-ground ones are
   deferred (they become ground by the final atom thanks to safety). *)
let cmps_hold env cmps =
  List.for_all
    (fun (op, a, b) ->
      match L.Literal.eval_cmp (L.Literal.apply env (L.Literal.Cmp (op, a, b))) with
      | Some ok -> ok
      | None -> true)
    cmps

let lazy_conj ~source ~schema_of (c : Ast.conj) =
  let atoms = Array.of_list c.Ast.atoms in
  let n = Array.length atoms in
  let streams = Array.map source atoms in
  let out_schema = Analyze.schema_of_conj schema_of c in
  let emit env =
    Array.of_list
      (List.map
         (fun t ->
           match L.Subst.resolve env t with
           | L.Term.Const v -> v
           | L.Term.Var x -> raise (Unsafe ("unbound head variable: " ^ x)))
         c.Ast.head)
  in
  (* Stack of frames: (depth, cursor, env-before-this-depth). *)
  let stack = ref [] in
  let started = ref false in
  let done_ = ref false in
  let push depth env = stack := (depth, TS.cursor streams.(depth), env) :: !stack in
  let rec pull () =
    if !done_ then None
    else if not !started then begin
      started := true;
      if n = 0 then begin
        done_ := true;
        if cmps_hold L.Subst.empty c.Ast.cmps then Some (emit L.Subst.empty) else None
      end
      else begin
        push 0 L.Subst.empty;
        pull ()
      end
    end
    else
      match !stack with
      | [] ->
        done_ := true;
        None
      | (depth, cur, env) :: rest ->
        (match TS.next cur with
         | None ->
           stack := rest;
           pull ()
         | Some tup ->
           (match match_tuple env atoms.(depth) tup with
            | None -> pull ()
            | Some env' ->
              if not (cmps_hold env' c.Ast.cmps) then pull ()
              else if depth = n - 1 then Some (emit env')
              else begin
                push (depth + 1) env';
                pull ()
              end))
  in
  TS.from out_schema pull
