(** CAQL — the Cache Query Language (paper §5: "a superset of conventional,
    relational query languages such as SQL").

    The core is the {b PSJ conjunctive query} [conj]: a conjunction of
    relation occurrences and evaluable comparisons with a projection head.
    This is the fragment over which subsumption is decided (§5.3.2 limits
    [Q] and the cache elements to "logic expressions equivalent to PSJ
    expressions", after [LARS85]).

    On top of the conjunctive core CAQL adds union (OR), safe negation
    (NOT, as set difference), and second-order aggregation (SETOF / BAGOF /
    AGG) — operations the remote DBMS of the paper's era did not support
    and the CMS evaluates itself. *)

type comparison = Braid_relalg.Row_pred.cmp * Braid_logic.Literal.expr * Braid_logic.Literal.expr

type conj = {
  head : Braid_logic.Term.t list;  (** answer terms: variables or constants *)
  atoms : Braid_logic.Atom.t list;  (** base/view relation occurrences *)
  cmps : comparison list;
}

type t =
  | Conj of conj
  | Union of t list  (** non-empty; members have equal head arity *)
  | Diff of t * t  (** safe negation: tuples of the left not in the right *)
  | Distinct of t  (** SETOF: set semantics over a BAGOF result *)
  | Division of t * t
      (** the ALL quantifier as relational division: [Division (d, s)]
          yields the prefixes [k] of dividend [d] (arity |k| + |s|) that
          pair with {e every} tuple of the divisor [s] *)
  | Fixpoint of fixpoint
      (** the specialized fixed point operator of §2's second-order
          templates: [step] may reference [name] as a relation; evaluation
          iterates [base ∪ step] to a fixpoint (set semantics) *)
  | Agg of agg

and fixpoint = {
  name : string;  (** the recursive relation's name, visible inside [step] *)
  base : t;
  step : t;  (** same head arity as [base] *)
}

and agg = {
  keys : int list;  (** group-by positions within the source's head *)
  specs : Braid_relalg.Aggregate.spec list;
  source : t;
}

val conj : ?cmps:comparison list -> Braid_logic.Term.t list -> Braid_logic.Atom.t list -> conj

val head_arity : t -> int

val conj_vars : conj -> string list
(** Distinct variables: head first, then atoms, then comparisons. *)

val body_vars : conj -> string list
val head_constants : conj -> Braid_relalg.Value.t list

val constants : conj -> Braid_relalg.Value.t list
(** All constants appearing anywhere in the conjunct. *)

val apply_subst : Braid_logic.Subst.t -> conj -> conj

val rename_vars : (string -> string) -> conj -> conj

val canonical : conj -> conj
(** Variables renamed to [v0], [v1], ... in order of first occurrence —
    used for variant (exact-match) comparison of queries. *)

val variant_equal : conj -> conj -> bool
(** Equality up to variable renaming, with atom order significant. This is
    the reuse test of exact-match caching systems (BERMUDA [IOAN88],
    [SELL87]), which BrAID's subsumption strictly generalizes. *)

val pp_conj : Format.formatter -> conj -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val conj_to_string : conj -> string
