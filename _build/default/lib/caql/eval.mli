(** CAQL evaluation.

    Two evaluation modes, matching the CMS's two data representations
    (§5.1): {b eager} evaluation producing a full extension, and {b lazy}
    evaluation producing a generator that computes one solution tuple on
    demand (depth-first with chronological backtracking over the atom
    list).

    Both are parameterized by [source], the function that resolves a
    relation occurrence to data — the caller (Cache Manager, remote engine
    wrapper, or test harness) decides where the extension comes from. *)

exception Unsafe of string
(** Raised when a head or comparison variable is not range-restricted. *)

val conj :
  source:(Braid_logic.Atom.t -> Braid_relalg.Relation.t) ->
  schema_of:(string -> Braid_relalg.Schema.t option) ->
  Ast.conj ->
  Braid_relalg.Relation.t
(** Eager bottom-up evaluation: left-to-right hash-join pipeline with
    pushed-down constant selections and comparisons. *)

val query :
  source:(Braid_logic.Atom.t -> Braid_relalg.Relation.t) ->
  schema_of:(string -> Braid_relalg.Schema.t option) ->
  Ast.t ->
  Braid_relalg.Relation.t
(** Full CAQL: union (set semantics), difference, aggregation. *)

val lazy_conj :
  source:(Braid_logic.Atom.t -> Braid_stream.Tuple_stream.t) ->
  schema_of:(string -> Braid_relalg.Schema.t option) ->
  Ast.conj ->
  Braid_stream.Tuple_stream.t
(** Lazy generator: tuples are produced on demand; the amount of work done
    (visible through the sources' [produced] counters) is proportional to
    how far the consumer pulls. *)
