module L = Braid_logic
module V = Braid_relalg.Value
module RP = Braid_relalg.Row_pred

exception Error of string

(* --- lexer --- *)

type token =
  | Tident of string
  | Tvar of string
  | Tint of int
  | Tfloat of float
  | Tstring of string
  | Tlparen
  | Trparen
  | Tcomma
  | Tamp
  | Ttilde
  | Tdot
  | Tturnstile
  | Tcmp of RP.cmp
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Teof

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let pos = ref 0 in
  let fail msg = raise (Error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let emit t = tokens := t :: !tokens in
  while !pos < n do
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '%' then begin
      (* comment to end of line *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if c = '(' then (emit Tlparen; incr pos)
    else if c = ')' then (emit Trparen; incr pos)
    else if c = ',' then (emit Tcomma; incr pos)
    else if c = '&' then (emit Tamp; incr pos)
    else if c = '~' then (emit Ttilde; incr pos)
    else if c = '.' then (emit Tdot; incr pos)
    else if c = '+' then (emit Tplus; incr pos)
    else if c = '*' then (emit Tstar; incr pos)
    else if c = '/' then (emit Tslash; incr pos)
    else if c = '=' then (emit (Tcmp RP.Eq); incr pos)
    else if c = '<' then begin
      match peek 1 with
      | Some '=' -> emit (Tcmp RP.Le); pos := !pos + 2
      | Some '>' -> emit (Tcmp RP.Ne); pos := !pos + 2
      | Some _ | None -> emit (Tcmp RP.Lt); incr pos
    end
    else if c = '>' then begin
      match peek 1 with
      | Some '=' -> emit (Tcmp RP.Ge); pos := !pos + 2
      | Some _ | None -> emit (Tcmp RP.Gt); incr pos
    end
    else if c = ':' then begin
      match peek 1 with
      | Some '-' -> emit Tturnstile; pos := !pos + 2
      | Some _ | None -> fail "expected ':-'"
    end
    else if c = '-' then (emit Tminus; incr pos)
    else if c = '\'' || c = '"' then begin
      let quote = c in
      let buf = Buffer.create 16 in
      incr pos;
      while !pos < n && src.[!pos] <> quote do
        Buffer.add_char buf src.[!pos];
        incr pos
      done;
      if !pos >= n then fail "unterminated string";
      incr pos;
      emit (Tstring (Buffer.contents buf))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !pos in
      while !pos < n && ((src.[!pos] >= '0' && src.[!pos] <= '9') || src.[!pos] = '.') do
        (* a '.' followed by a non-digit is the clause terminator *)
        if src.[!pos] = '.' && not (match peek 1 with Some d -> d >= '0' && d <= '9' | None -> false)
        then raise Exit;
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      if String.contains text '.' then emit (Tfloat (float_of_string text))
      else emit (Tint (int_of_string text))
    end
    else if is_ident_char c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let text = String.sub src start (!pos - start) in
      if (c >= 'A' && c <= 'Z') || c = '_' then emit (Tvar text) else emit (Tident text)
    end
    else fail (Printf.sprintf "unexpected character %C" c)
  done;
  emit Teof;
  List.rev !tokens

(* Numbers may legitimately end just before a clause-terminating '.'; the
   lexer signals that with Exit, which we convert by re-lexing carefully. *)
let tokenize src =
  try tokenize src
  with Exit ->
    (* Retry with a space inserted before every '.' that terminates a
       number; simplest is to scan manually. *)
    let buf = Buffer.create (String.length src + 8) in
    String.iteri
      (fun i c ->
        if
          c = '.'
          && i > 0
          && src.[i - 1] >= '0'
          && src.[i - 1] <= '9'
          && not (i + 1 < String.length src && src.[i + 1] >= '0' && src.[i + 1] <= '9')
        then Buffer.add_string buf " ."
        else Buffer.add_char buf c)
      src;
    tokenize (Buffer.contents buf)

(* --- parser --- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok msg =
  if peek st = tok then advance st else raise (Error ("expected " ^ msg))

(* expr := mult (('+'|'-') mult)* ; mult := prim (('*'|'/') prim)* *)
let rec parse_expr st =
  let lhs = parse_mult st in
  let rec loop lhs =
    match peek st with
    | Tplus ->
      advance st;
      loop (L.Literal.Add (lhs, parse_mult st))
    | Tminus ->
      advance st;
      loop (L.Literal.Sub (lhs, parse_mult st))
    | _ -> lhs
  in
  loop lhs

and parse_mult st =
  let lhs = parse_prim st in
  let rec loop lhs =
    match peek st with
    | Tstar ->
      advance st;
      loop (L.Literal.Mul (lhs, parse_prim st))
    | Tslash ->
      advance st;
      loop (L.Literal.Div (lhs, parse_prim st))
    | _ -> lhs
  in
  loop lhs

and parse_prim st =
  match peek st with
  | Tvar x ->
    advance st;
    L.Literal.Term (L.Term.Var x)
  | Tint k ->
    advance st;
    L.Literal.Term (L.Term.Const (V.Int k))
  | Tfloat f ->
    advance st;
    L.Literal.Term (L.Term.Const (V.Float f))
  | Tstring s ->
    advance st;
    L.Literal.Term (L.Term.Const (V.Str s))
  | Tminus ->
    advance st;
    (match parse_prim st with
     | L.Literal.Term (L.Term.Const (V.Int k)) -> L.Literal.Term (L.Term.Const (V.Int (-k)))
     | L.Literal.Term (L.Term.Const (V.Float f)) ->
       L.Literal.Term (L.Term.Const (V.Float (-.f)))
     | e -> L.Literal.Sub (L.Literal.Term (L.Term.Const (V.Int 0)), e))
  | Tident "true" ->
    advance st;
    L.Literal.Term (L.Term.Const (V.Bool true))
  | Tident "false" ->
    advance st;
    L.Literal.Term (L.Term.Const (V.Bool false))
  | Tident name ->
    advance st;
    L.Literal.Term (L.Term.Const (V.Str name))
  | Tlparen ->
    advance st;
    let e = parse_expr st in
    expect st Trparen ")";
    e
  | _ -> raise (Error "expected a term")

let term_of_expr = function
  | L.Literal.Term t -> t
  | L.Literal.Add _ | L.Literal.Sub _ | L.Literal.Mul _ | L.Literal.Div _ ->
    raise (Error "arithmetic not allowed in this position")

(* Head terms may be aggregate applications: count(X), sum(X), avg(X),
   min(X), max(X) — CAQL's AGG second-order predicate. *)
type head_term =
  | Plain of L.Term.t
  | Agg_of of string * L.Term.t

let agg_names = [ "count"; "sum"; "avg"; "min"; "max" ]

let parse_term_list st =
  expect st Tlparen "(";
  let rec loop acc =
    let e = parse_expr st in
    let acc = term_of_expr e :: acc in
    match peek st with
    | Tcomma ->
      advance st;
      loop acc
    | Trparen ->
      advance st;
      List.rev acc
    | _ -> raise (Error "expected ',' or ')'")
  in
  if peek st = Trparen then begin
    advance st;
    []
  end
  else loop []

let parse_head_list st =
  expect st Tlparen "(";
  if peek st = Trparen then begin
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let item =
        match st.toks with
        | Tident f :: Tlparen :: _ when List.mem f agg_names ->
          advance st;
          advance st;
          let arg = term_of_expr (parse_expr st) in
          expect st Trparen ")";
          Agg_of (f, arg)
        | _ -> Plain (term_of_expr (parse_expr st))
      in
      let acc = item :: acc in
      match peek st with
      | Tcomma ->
        advance st;
        loop acc
      | Trparen ->
        advance st;
        List.rev acc
      | _ -> raise (Error "expected ',' or ')'")
    in
    loop []
  end

type conjunct =
  | Catom of L.Atom.t
  | Cneg of L.Atom.t
  | Ccmp of Ast.comparison

let parse_conjunct st =
  match peek st with
  | Ttilde ->
    advance st;
    (match peek st with
     | Tident name ->
       advance st;
       Cneg (L.Atom.make name (parse_term_list st))
     | _ -> raise (Error "expected an atom after '~'"))
  | Tident name when (match st.toks with _ :: Tlparen :: _ -> true | _ -> false) ->
    advance st;
    Catom (L.Atom.make name (parse_term_list st))
  | _ ->
    let lhs = parse_expr st in
    (match peek st with
     | Tcmp op ->
       advance st;
       let rhs = parse_expr st in
       Ccmp (op, lhs, rhs)
     | _ -> raise (Error "expected a comparison operator"))

let parse_body st =
  let rec loop acc =
    let c = parse_conjunct st in
    match peek st with
    | Tamp | Tcomma ->
      advance st;
      loop (c :: acc)
    | _ -> List.rev (c :: acc)
  in
  loop []

let clause_of st =
  (* optional SETOF marker *)
  let distinct =
    match st.toks with
    | Tident "distinct" :: Tident _ :: _ ->
      advance st;
      true
    | _ -> false
  in
  let name =
    match peek st with
    | Tident name ->
      advance st;
      name
    | _ -> raise (Error "expected a head predicate")
  in
  let head_items = parse_head_list st in
  let body =
    match peek st with
    | Tturnstile ->
      advance st;
      parse_body st
    | _ -> []
  in
  expect st Tdot "'.'";
  let atoms = List.filter_map (function Catom a -> Some a | Cneg _ | Ccmp _ -> None) body in
  let negs = List.filter_map (function Cneg a -> Some a | Catom _ | Ccmp _ -> None) body in
  let cmps = List.filter_map (function Ccmp c -> Some c | Catom _ | Cneg _ -> None) body in
  (* the positive/negative split with a given projection head *)
  let base_query head =
    let positive = Ast.conj ~cmps head atoms in
    if negs = [] then Ast.Conj positive
    else
      (* head :- pos & ~neg  ==  pos-answers minus answers where the negated
         atoms also hold (safe set difference). *)
      Ast.Diff (Ast.Conj positive, Ast.Conj (Ast.conj ~cmps head (atoms @ negs)))
  in
  let has_agg = List.exists (function Agg_of _ -> true | Plain _ -> false) head_items in
  let query =
    if not has_agg then base_query (List.map (function Plain t -> t | Agg_of _ -> assert false) head_items)
    else begin
      (* group by the plain head terms; aggregate columns follow them in
         the source query's head, in order of appearance *)
      let keys = List.filter_map (function Plain t -> Some t | Agg_of _ -> None) head_items in
      let agg_args = List.filter_map (function Agg_of (f, t) -> Some (f, t) | Plain _ -> None) head_items in
      let source_head = keys @ List.map snd agg_args in
      let nkeys = List.length keys in
      let specs =
        List.mapi
          (fun j (f, _) ->
            let col = nkeys + j in
            match f with
            | "count" -> Braid_relalg.Aggregate.Count
            | "sum" -> Braid_relalg.Aggregate.Sum col
            | "avg" -> Braid_relalg.Aggregate.Avg col
            | "min" -> Braid_relalg.Aggregate.Min col
            | "max" -> Braid_relalg.Aggregate.Max col
            | _ -> raise (Error ("unknown aggregate " ^ f)))
          agg_args
      in
      Ast.Agg
        {
          Ast.keys = List.init nkeys (fun i -> i);
          specs;
          source = base_query source_head;
        }
    end
  in
  let query = if distinct then Ast.Distinct query else query in
  (name, query)

let parse_clause src =
  let st = { toks = tokenize src } in
  let r = clause_of st in
  if peek st <> Teof then raise (Error "trailing input after clause");
  r

let parse_program src =
  let st = { toks = tokenize src } in
  let rec loop acc =
    if peek st = Teof then List.rev acc else loop (clause_of st :: acc)
  in
  let clauses = loop [] in
  (* Group same-name clauses into unions, preserving name order. *)
  let names =
    List.fold_left (fun acc (n, _) -> if List.mem n acc then acc else n :: acc) [] clauses
    |> List.rev
  in
  List.map
    (fun n ->
      match List.filter_map (fun (m, q) -> if String.equal m n then Some q else None) clauses with
      | [ q ] -> (n, q)
      | qs -> (n, Ast.Union qs))
    names

let parse_query src =
  match parse_program src with
  | [ (_, q) ] -> q
  | [] -> raise (Error "empty input")
  | _ -> raise (Error "expected a single query definition")
