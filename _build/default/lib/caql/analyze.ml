module L = Braid_logic
module R = Braid_relalg

let is_safe_conj (c : Ast.conj) =
  let atom_vars = List.concat_map L.Atom.vars c.Ast.atoms in
  let covered x = List.mem x atom_vars in
  List.for_all (function L.Term.Var x -> covered x | L.Term.Const _ -> true) c.Ast.head
  && List.for_all
       (fun (_, a, b) ->
         List.for_all covered (L.Literal.expr_vars a @ L.Literal.expr_vars b))
       c.Ast.cmps

let rec is_safe = function
  | Ast.Conj c -> is_safe_conj c
  | Ast.Union [] -> false
  | Ast.Union (q :: qs) ->
    let n = Ast.head_arity q in
    is_safe q && List.for_all (fun q' -> Ast.head_arity q' = n && is_safe q') qs
  | Ast.Diff (a, b) -> Ast.head_arity a = Ast.head_arity b && is_safe a && is_safe b
  | Ast.Distinct q -> is_safe q
  | Ast.Division (dividend, divisor) ->
    Ast.head_arity dividend > Ast.head_arity divisor
    && Ast.head_arity divisor > 0
    && is_safe dividend && is_safe divisor
  | Ast.Fixpoint f ->
    Ast.head_arity f.Ast.base = Ast.head_arity f.Ast.step
    && is_safe f.Ast.base && is_safe f.Ast.step
  | Ast.Agg a ->
    is_safe a.Ast.source
    &&
    let n = Ast.head_arity a.Ast.source in
    List.for_all (fun k -> k >= 0 && k < n) a.Ast.keys

let binding_pattern (c : Ast.conj) =
  List.map (function L.Term.Const _ -> `Bound | L.Term.Var _ -> `Free) c.Ast.head

let var_type schema_of (c : Ast.conj) x =
  let rec in_atoms = function
    | [] -> None
    | a :: rest ->
      let rec scan i = function
        | [] -> in_atoms rest
        | L.Term.Var y :: _ when String.equal x y ->
          (match schema_of a.L.Atom.pred with
           | Some s when i < R.Schema.arity s -> Some (R.Schema.ty_at s i)
           | Some _ | None -> in_atoms rest)
        | _ :: args -> scan (i + 1) args
      in
      scan 0 a.L.Atom.args
  in
  in_atoms c.Ast.atoms

let rec fresh_name taken n = if List.mem n taken then fresh_name taken (n ^ "'") else n

let schema_of_conj schema_of (c : Ast.conj) =
  let attrs, _ =
    List.fold_left
      (fun (acc, taken) (i, t) ->
        let name, ty =
          match t with
          | L.Term.Var x ->
            let ty = Option.value ~default:R.Value.Tstr (var_type schema_of c x) in
            (x, ty)
          | L.Term.Const v ->
            let ty = Option.value ~default:R.Value.Tstr (R.Value.type_of v) in
            (Printf.sprintf "k%d" i, ty)
        in
        let name = fresh_name taken name in
        ((name, ty) :: acc, name :: taken))
      ([], [])
      (List.mapi (fun i t -> (i, t)) c.Ast.head)
  in
  R.Schema.make (List.rev attrs)

let rec schema_of sof = function
  | Ast.Conj c -> schema_of_conj sof c
  | Ast.Union [] -> invalid_arg "Analyze.schema_of: empty union"
  | Ast.Union (q :: _) -> schema_of sof q
  | Ast.Diff (a, _) -> schema_of sof a
  | Ast.Distinct q -> schema_of sof q
  | Ast.Division (dividend, divisor) ->
    let d = schema_of sof dividend in
    let keys = Ast.head_arity dividend - Ast.head_arity divisor in
    R.Schema.project d (List.init (max 0 keys) (fun i -> i))
  | Ast.Fixpoint f -> schema_of sof f.Ast.base
  | Ast.Agg a ->
    let src = schema_of sof a.Ast.source in
    let key_attrs = List.map (fun k -> (R.Schema.name_at src k, R.Schema.ty_at src k)) a.Ast.keys in
    let agg_attrs =
      List.map
        (fun sp ->
          let ty =
            match sp with
            | R.Aggregate.Count -> R.Value.Tint
            | R.Aggregate.Avg _ -> R.Value.Tfloat
            | R.Aggregate.Sum i | R.Aggregate.Min i | R.Aggregate.Max i -> R.Schema.ty_at src i
          in
          (R.Aggregate.name_of_spec sp, ty))
        a.Ast.specs
    in
    let rec uniq taken = function
      | [] -> []
      | (n, ty) :: rest ->
        let n = fresh_name taken n in
        (n, ty) :: uniq (n :: taken) rest
    in
    R.Schema.make (uniq [] (key_attrs @ agg_attrs))
