(** Static analysis of CAQL queries: safety, binding patterns, result
    schemas. *)

val is_safe_conj : Ast.conj -> bool
(** Every head variable and every comparison variable occurs in some
    relation occurrence (range-restriction). *)

val is_safe : Ast.t -> bool
(** [is_safe_conj] recursively; [Diff] additionally requires equal arity. *)

val binding_pattern : Ast.conj -> [ `Bound | `Free ] list
(** Per head position: [`Bound] for a constant, [`Free] for a variable —
    the consumer/producer distinction of advice annotations (§4.2.1). *)

val schema_of_conj :
  (string -> Braid_relalg.Schema.t option) -> Ast.conj -> Braid_relalg.Schema.t
(** Result schema for a conjunctive query: attribute names from head
    variable names (constants become [k0], [k1], ...; a repeated variable
    is primed), types resolved from the base schemas when possible,
    defaulting to [str]. *)

val schema_of :
  (string -> Braid_relalg.Schema.t option) -> Ast.t -> Braid_relalg.Schema.t

val var_type :
  (string -> Braid_relalg.Schema.t option) -> Ast.conj -> string -> Braid_relalg.Value.ty option
(** Type of a variable from its first occurrence in a relation occurrence
    whose base schema is known. *)
