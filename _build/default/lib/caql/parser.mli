(** Textual CAQL syntax (Prolog-flavoured, as in the paper's examples):

    {v
    d2(X, Y) :- b2(X, Z) & b3(Z, c2, Y).
    k(X) :- b(X, N) & N >= 10 & ~excluded(X).
    v}

    - Identifiers starting with an upper-case letter or [_] are variables;
      lower-case identifiers are symbolic constants, except directly before
      [(] where they are predicate names.
    - Literals: integers, floats, ['..'] / ["..."] strings, [true]/[false].
    - Body conjuncts are separated by [&] (or [,]); [~] negates an atom
      (compiled to safe set difference); comparisons use
      [= <> < <= > >=] with [+ - * /] arithmetic.
    - Several clauses with the same head predicate form a union.

    A program is a sequence of clauses, each terminated by [.]. *)

exception Error of string
(** Parse error with position information in the message. *)

val parse_clause : string -> string * Ast.t
(** Parses a single clause; returns the head predicate name and the query
    ([Conj], or [Diff] when the body contains negated atoms). *)

val parse_program : string -> (string * Ast.t) list
(** Parses clauses and groups same-name clauses into unions, preserving
    first-appearance order of names. *)

val parse_query : string -> Ast.t
(** [parse_program] then expects exactly one name; returns its query. *)
