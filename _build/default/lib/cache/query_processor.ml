module R = Braid_relalg
module L = Braid_logic
module A = Braid_caql.Ast
module TS = Braid_stream.Tuple_stream

exception Unknown_relation of string

(* Columns of the atom holding constants, with their values — candidate
   index probe. *)
let const_cols (a : L.Atom.t) =
  List.filter_map
    (function i, L.Term.Const v -> Some (i, v) | _, L.Term.Var _ -> None)
    (List.mapi (fun i t -> (i, t)) a.L.Atom.args)

let resolve_extension model extra touched (a : L.Atom.t) =
  match List.assoc_opt a.L.Atom.pred extra with
  | Some r ->
    touched := !touched + R.Relation.cardinality r;
    r
  | None ->
    (match Cache_model.find model a.L.Atom.pred with
     | None -> raise (Unknown_relation a.L.Atom.pred)
     | Some e ->
       Cache_model.touch model e;
       let consts = const_cols a in
       let cols = List.map fst consts in
       (match (if cols = [] then None else Element.index_on e cols) with
        | Some ix ->
          (* Index probe: only matching tuples are touched. *)
          let r = R.Ops.select_indexed ix (List.map snd consts) (Element.extension e) in
          touched := !touched + R.Relation.cardinality r;
          r
        | None ->
          let r = Element.extension e in
          touched := !touched + R.Relation.cardinality r;
          r))

let schema_resolver model extra name =
  match List.assoc_opt name extra with
  | Some r -> Some (R.Relation.schema r)
  | None -> Option.map Element.schema (Cache_model.find model name)

let eval model ?(extra = []) q =
  let touched = ref 0 in
  let source = resolve_extension model extra touched in
  let result =
    Braid_caql.Eval.query ~source ~schema_of:(schema_resolver model extra) q
  in
  (result, !touched)

let eval_conj_lazy model ?(extra = []) c =
  (* Resolve to streams without forcing generator elements: laziness must
     propagate all the way down. *)
  let source (a : L.Atom.t) =
    match List.assoc_opt a.L.Atom.pred extra with
    | Some r -> TS.of_relation r
    | None ->
      (match Cache_model.find model a.L.Atom.pred with
       | None -> raise (Unknown_relation a.L.Atom.pred)
       | Some e ->
         Cache_model.touch model e;
         Element.stream e)
  in
  Braid_caql.Eval.lazy_conj ~source ~schema_of:(schema_resolver model extra) c
