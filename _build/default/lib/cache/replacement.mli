(** Cache replacement: LRU modified by advice (paper §5.4: "using an LRU
    scheme which may be modified due to advice").

    Pinned elements (those the Advice Manager predicts will be needed for
    one of the next queries, cf. the path-expression tracking example in
    §4.2.2) are spared unless nothing else can free enough space. *)

val victims :
  Cache_model.t -> needed_bytes:int -> ?protect:(Element.t -> bool) -> unit -> Element.t list
(** Elements to evict, least-recently-used first, so that [needed_bytes]
    fits within capacity. Pinned and [protect]ed elements are considered
    only after all unpinned ones. The returned list may still be
    insufficient when the cache cannot free enough (oversized requests). *)

val evict :
  Cache_model.t -> needed_bytes:int -> ?protect:(Element.t -> bool) -> unit -> string list
(** Applies [victims] and removes them; returns the evicted ids. *)
