lib/cache/element.ml: Braid_caql Braid_relalg Braid_stream Format List
