lib/cache/cache_manager.ml: Braid_caql Braid_logic Braid_relalg Braid_subsume Cache_model Element List Query_processor Replacement String
