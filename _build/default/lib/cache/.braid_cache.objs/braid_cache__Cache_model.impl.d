lib/cache/cache_model.ml: Braid_caql Braid_logic Element Hashtbl List Printf String
