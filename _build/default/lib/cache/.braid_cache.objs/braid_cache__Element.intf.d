lib/cache/element.mli: Braid_caql Braid_relalg Braid_stream Format
