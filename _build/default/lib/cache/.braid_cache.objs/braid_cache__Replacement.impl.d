lib/cache/replacement.ml: Cache_model Element List Stdlib
