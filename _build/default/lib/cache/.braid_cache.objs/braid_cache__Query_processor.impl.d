lib/cache/query_processor.ml: Braid_caql Braid_logic Braid_relalg Braid_stream Cache_model Element List Option
