lib/cache/replacement.mli: Cache_model Element
