lib/cache/cache_manager.mli: Braid_caql Braid_relalg Braid_stream Braid_subsume Cache_model Element
