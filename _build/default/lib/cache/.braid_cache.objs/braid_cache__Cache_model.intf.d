lib/cache/cache_model.mli: Element
