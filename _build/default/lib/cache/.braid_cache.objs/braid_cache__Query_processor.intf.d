lib/cache/query_processor.mli: Braid_caql Braid_relalg Braid_stream Cache_model
