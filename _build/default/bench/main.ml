(* The benchmark harness.

   With no argument, runs every experiment E1-E10 (one per architectural
   claim / figure of the paper — see DESIGN.md §5 and EXPERIMENTS.md) and
   prints its result table, then the bechamel microbenchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe e5 e8      # selected experiments
     dune exec bench/main.exe micro      # microbenchmarks only *)

module L = Braid_logic
module T = L.Term
module R = Braid_relalg
module V = R.Value
module A = Braid_caql.Ast
module Sub = Braid_subsume.Subsumption

(* --- bechamel microbenchmarks: the hot primitives --- *)

let v x = T.Var x
let s x = T.Const (V.Str x)
let atom p args = L.Atom.make p args

let bench_unify =
  let a = atom "p" [ v "X"; s "c"; v "Y"; v "Z" ] in
  let b = atom "p" [ s "a"; s "c"; v "W"; s "d" ] in
  Bechamel.Test.make ~name:"unify_atoms"
    (Bechamel.Staged.stage (fun () -> ignore (L.Unify.atoms L.Subst.empty a b)))

let bench_match =
  let general = atom "p" [ v "X"; v "Y"; v "Z"; v "W" ] in
  let specific = atom "p" [ s "a"; v "Q"; s "b"; v "R" ] in
  Bechamel.Test.make ~name:"one_way_match"
    (Bechamel.Staged.stage (fun () ->
         ignore (L.Unify.match_atoms L.Subst.empty ~general ~specific)))

let bench_subsumption =
  let element =
    {
      Sub.id = "e";
      def =
        A.conj [ v "X"; v "Z" ]
          [ atom "b" [ v "X"; v "Y" ]; atom "c" [ v "Y"; v "Z" ] ];
    }
  in
  let query =
    A.conj [ v "U" ] [ atom "b" [ v "U"; v "V" ]; atom "c" [ v "V"; s "k" ] ]
  in
  Bechamel.Test.make ~name:"subsumption_covers"
    (Bechamel.Staged.stage (fun () -> ignore (Sub.covers element query)))

let bench_hash_join =
  let schema = R.Schema.make [ ("x", V.Tint); ("y", V.Tint) ] in
  let rel n seed =
    R.Relation.of_tuples ~name:"r" schema
      (List.init n (fun i -> [| V.Int ((i * seed) mod 97); V.Int i |]))
  in
  let a = rel 1000 7 and b = rel 1000 13 in
  Bechamel.Test.make ~name:"hash_join_1k_x_1k"
    (Bechamel.Staged.stage (fun () ->
         ignore (R.Ops.hash_join ~left_cols:[ 0 ] ~right_cols:[ 0 ] a b)))

let bench_stream_pull =
  let schema = R.Schema.make [ ("n", V.Tint) ] in
  Bechamel.Test.make ~name:"stream_pull_1k"
    (Bechamel.Staged.stage (fun () ->
         let stream =
           Braid_stream.Tuple_stream.of_list schema
             (List.init 1000 (fun i -> [| V.Int i |]))
         in
         let c = Braid_stream.Tuple_stream.cursor stream in
         let rec drain () =
           match Braid_stream.Tuple_stream.next c with Some _ -> drain () | None -> ()
         in
         drain ()))

let bench_parser =
  let text = "eligible(S, C) :- prereq(C, R) & completed(S, R) & S <> C." in
  Bechamel.Test.make ~name:"caql_parse"
    (Bechamel.Staged.stage (fun () -> ignore (Braid_caql.Parser.parse_clause text)))

let bench_tracker =
  let path =
    Braid_advice.Ast.Seq
      ( [
          Braid_advice.Ast.Pattern ("d1", []);
          Braid_advice.Ast.Alt
            ([ Braid_advice.Ast.Pattern ("d2", []); Braid_advice.Ast.Pattern ("d3", []) ], Some 1);
        ],
        { Braid_advice.Ast.lo = 0; hi = Braid_advice.Ast.Inf } )
  in
  let nfa = Braid_advice.Tracker.compile path in
  Bechamel.Test.make ~name:"path_tracking_step"
    (Bechamel.Staged.stage (fun () ->
         let tr = Braid_advice.Tracker.start nfa in
         ignore (Braid_advice.Tracker.advance tr "d1");
         ignore (Braid_advice.Tracker.advance tr "d2");
         ignore (Braid_advice.Tracker.next_possible tr)))

let micro_tests =
  [
    bench_unify;
    bench_match;
    bench_subsumption;
    bench_hash_join;
    bench_stream_pull;
    bench_parser;
    bench_tracker;
  ]

let run_micro () =
  print_endline "== microbenchmarks (bechamel) ==";
  let benchmark test =
    let open Bechamel in
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
    let raw = Benchmark.all cfg instances test in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    Analyze.all ols (Toolkit.Instance.monotonic_clock) raw
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-24s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "%-24s (no estimate)\n" name)
        results)
    micro_tests

(* --- entry point --- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [] ->
    Braid_experiments.All.run_all ();
    run_micro ()
  | args ->
    List.iter
      (fun arg ->
        match String.lowercase_ascii arg with
        | "micro" -> run_micro ()
        | id ->
          if not (Braid_experiments.All.run_one id) then begin
            Printf.eprintf
              "unknown experiment %S (expected e1..e10 or micro)\n" arg;
            exit 1
          end)
      args
